// EG301/EG302/EG310: bank-conflict analyses.
//
// Shared memory (EG301/EG302): the IR carries no shared addresses, so the
// pass reconstructs the access patterns from the tiling context -- staging
// stores follow tcsim's loading-phase layout, fragment loads read octets
// of consecutive tile rows -- and scores them with the warp_layout bank
// model. The diagnostic lands on the first LDS/STS site so the renderers
// can quote a representative instruction.
//
// Registers (EG310): Turing's register file has two banks (index parity);
// an instruction sourcing >= 3 distinct base registers from one bank needs
// an extra operand-collector cycle. Only meaningful once operands are
// physical, and the accumulator operand (source overlapping the
// destination, forwarded in the pipeline) is exempt -- which is why the
// generated HMMA sequences are clean by construction.
#include <algorithm>
#include <string>
#include <vector>

#include "sass/analysis/dataflow.hpp"
#include "sass/analysis/passes.hpp"
#include "tcsim/warp_layout.hpp"

namespace egemm::sass::analysis {

namespace {

/// First site of `op` across the kernel, as a diagnostic anchor.
bool find_first_site(const Kernel& kernel, Op op, SourceLoc* loc) {
  const auto scan = [&](const std::vector<Instr>& instrs, Section section) {
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      if (instrs[i].op == op) {
        *loc = SourceLoc{section, i, -1};
        return true;
      }
    }
    return false;
  };
  return scan(kernel.prologue, Section::kPrologue) ||
         scan(kernel.body, Section::kBody) ||
         scan(kernel.epilogue, Section::kEpilogue);
}

void check_shared_banks(const Kernel& kernel, const AnalysisOptions& options,
                        DiagnosticEngine& engine) {
  if (!options.has_tile && options.shared_pitch_halves < 0) return;
  const int bk = options.has_tile ? options.tile.bk : 0;
  const int pitch_halves = options.shared_pitch_halves >= 0
                               ? options.shared_pitch_halves
                               : bk + 4;  // TileConfig's padded layout
  if (pitch_halves < 2 || pitch_halves % 2 != 0) return;

  SourceLoc loc;
  if (options.has_tile && find_first_site(kernel, Op::kSts, &loc)) {
    const int degree = tcsim::staging_conflict_degree(bk, pitch_halves);
    if (degree > 1) {
      engine.report("EG302", Severity::kWarning, loc,
                    "STS staging stores hit each shared-memory bank " +
                        std::to_string(degree) + " ways per phase (pitch " +
                        std::to_string(pitch_halves) + " halves)");
    }
  }
  if (find_first_site(kernel, Op::kLds, &loc)) {
    const int rows =
        options.has_tile ? std::max(options.tile.wm, options.tile.wn) : 32;
    const int degree = tcsim::fragment_conflict_degree(rows, pitch_halves);
    if (degree > 1) {
      engine.report("EG301", Severity::kWarning, loc,
                    "LDS fragment loads conflict " + std::to_string(degree) +
                        "-way on the shared-memory banks (row pitch " +
                        std::to_string(pitch_halves) +
                        " halves; pad the pitch off the power of two)");
    }
  }
}

void check_register_banks(const Kernel& kernel, DiagnosticEngine& engine) {
  const auto scan = [&](const std::vector<Instr>& instrs, Section section) {
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const Instr& instr = instrs[i];
      // Distinct source base registers per bank (parity), skipping the
      // forwarded accumulator operand.
      std::vector<std::int32_t> bases[2];
      for (const RegRange& src : instr.srcs) {
        if (!src.valid() || src.overlaps(instr.dst)) continue;
        std::vector<std::int32_t>& bank =
            bases[static_cast<std::size_t>(src.index % 2)];
        if (std::find(bank.begin(), bank.end(), src.index) == bank.end()) {
          bank.push_back(src.index);
        }
      }
      for (int b = 0; b < 2; ++b) {
        if (bases[b].size() >= 3) {
          engine.report("EG310", Severity::kNote,
                        SourceLoc{section, i, -1},
                        std::string(op_name(instr.op)) + " sources " +
                            std::to_string(bases[b].size()) +
                            " operands from register bank " +
                            std::to_string(b) +
                            " (extra operand-collector cycle)");
        }
      }
    }
  };
  scan(kernel.prologue, Section::kPrologue);
  scan(kernel.body, Section::kBody);
  scan(kernel.epilogue, Section::kEpilogue);
}

}  // namespace

void run_bank_conflict_pass(const Kernel& kernel,
                            const AnalysisOptions& options,
                            DiagnosticEngine& engine) {
  check_shared_banks(kernel, options, engine);
  if (options.physical_registers) check_register_banks(kernel, engine);
}

}  // namespace egemm::sass::analysis
