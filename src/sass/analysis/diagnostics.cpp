#include "sass/analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>

namespace egemm::sass::analysis {

namespace {

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const char* section_name(Section section) noexcept {
  switch (section) {
    case Section::kPrologue:
      return "prologue";
    case Section::kBody:
      return "body";
    case Section::kEpilogue:
      return "epilogue";
  }
  return "?";
}

std::string SourceLoc::text() const {
  std::string out = section_name(section);
  if (trip >= 0) out += "[" + std::to_string(trip) + "]";
  out += "[" + std::to_string(index) + "]";
  return out;
}

void DiagnosticEngine::report(std::string code, Severity severity,
                              SourceLoc loc, std::string message) {
  if (per_code_cap_ != 0) {
    std::size_t same_code = 0;
    for (const Diagnostic& d : diagnostics_) {
      if (d.code == code) ++same_code;
    }
    if (same_code >= per_code_cap_) {
      ++suppressed_;
      return;
    }
  }
  diagnostics_.push_back(
      Diagnostic{std::move(code), severity, loc, std::move(message)});
}

std::size_t DiagnosticEngine::count(Severity severity) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

bool DiagnosticEngine::has_code(const std::string& code) const noexcept {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [&code](const Diagnostic& d) { return d.code == code; });
}

std::string DiagnosticEngine::render_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.code;
    out += " ";
    out += severity_name(d.severity);
    out += " @ " + d.loc.text() + ": " + d.message + "\n";
  }
  out += std::to_string(errors()) + " error(s), " +
         std::to_string(count(Severity::kWarning)) + " warning(s), " +
         std::to_string(count(Severity::kNote)) + " note(s)";
  if (suppressed_ != 0) {
    out += " (+" + std::to_string(suppressed_) + " suppressed by per-code cap)";
  }
  out += "\n";
  return out;
}

std::string DiagnosticEngine::render_json() const {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i != 0) out += ",";
    out += "{\"code\":";
    append_json_string(out, d.code);
    out += ",\"severity\":";
    append_json_string(out, severity_name(d.severity));
    out += ",\"section\":";
    append_json_string(out, section_name(d.loc.section));
    out += ",\"index\":" + std::to_string(d.loc.index);
    out += ",\"trip\":" + std::to_string(d.loc.trip);
    out += ",\"message\":";
    append_json_string(out, d.message);
    out += "}";
  }
  out += "],\"counts\":{\"error\":" + std::to_string(errors()) +
         ",\"warning\":" + std::to_string(count(Severity::kWarning)) +
         ",\"note\":" + std::to_string(count(Severity::kNote)) +
         ",\"suppressed\":" + std::to_string(suppressed_) + "}}";
  return out;
}

}  // namespace egemm::sass::analysis
