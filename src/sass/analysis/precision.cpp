#include "sass/analysis/precision.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sass/codegen.hpp"

namespace egemm::sass::analysis {

namespace {

/// HMMA.1688 reduces 8 k-lanes per instruction.
constexpr std::uint64_t kHmmaKLanes = 8;

std::uint8_t rounding_bit(Rounding rounding) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(rounding));
}

/// The abstract value one register definition (or the shared staging
/// region) carries. A flat join-semilattice per kind; kScalar (addressing
/// state, loop counters, zero-init) is numeric-neutral and joins into any
/// payload kind without conflict.
struct AbsVal {
  enum class Kind : std::uint8_t {
    kBottom,    ///< no information yet (fixpoint start)
    kScalar,    ///< non-numeric payload
    kPlanes,    ///< split-plane data (masks + rounding provenance)
    kAccum,     ///< accumulator (set of folded split-product terms)
    kConflict,  ///< planes and accumulator data merged -- a routing bug
  };
  Kind kind = Kind::kBottom;
  std::uint8_t a_planes = 0;
  std::uint8_t b_planes = 0;
  std::uint8_t roundings = 0;  ///< OR of rounding_bit() per producing split
  std::uint32_t term_mask = 0;

  /// this = this join other; returns true when the value changed.
  bool join(const AbsVal& other) {
    if (other.kind == Kind::kBottom || kind == Kind::kConflict) return false;
    if (kind == Kind::kBottom || kind == Kind::kScalar) {
      const bool changed = *this != other;
      if (changed) *this = other;
      return changed;
    }
    if (other.kind == Kind::kScalar) return false;
    if (other.kind == Kind::kConflict || other.kind != kind) {
      kind = Kind::kConflict;
      return true;
    }
    bool changed = false;
    auto merge_mask = [&changed](auto& dst, auto src) {
      if ((dst | src) != dst) {
        dst |= src;
        changed = true;
      }
    };
    merge_mask(a_planes, other.a_planes);
    merge_mask(b_planes, other.b_planes);
    merge_mask(roundings, other.roundings);
    merge_mask(term_mask, other.term_mask);
    return changed;
  }

  friend bool operator==(const AbsVal&, const AbsVal&) = default;
};

std::string term_text(int a_plane, int b_plane) {
  return "A" + std::to_string(a_plane) + "xB" + std::to_string(b_plane);
}

std::string json_number(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

bool PrecisionProfile::term_computed(int a_plane, int b_plane) const noexcept {
  if (planes <= 0 || a_plane < 0 || b_plane < 0 || a_plane >= planes ||
      b_plane >= planes) {
    return false;
  }
  return ((term_mask >> (a_plane * planes + b_plane)) & 1u) != 0;
}

std::string PrecisionProfile::describe() const {
  if (!derived) return "precision profile: not derived (untagged kernel)";
  std::string out = "precision profile: " +
                    std::string(core::split_method_name(split)) + " x" +
                    std::to_string(planes) + " (" + rounding_name(rounding) +
                    "), " + std::to_string(operation_bits) +
                    " operation bits (A " + std::to_string(derived_bits_a) +
                    ", B " + std::to_string(derived_bits_b) +
                    "), rel residual " + json_number(rel_residual) + "\n";
  for (const TermInfo& term : terms) {
    out += "  term " + term_text(term.a_plane, term.b_plane) + ": " +
           std::to_string(term.k_lanes_per_trip) +
           " k-lanes/trip, weight " + json_number(term.rel_weight) + "\n";
  }
  out += "  k per term " + std::to_string(k_per_term) +
         ", adds per element " + std::to_string(adds_per_element) + "\n";
  return out;
}

std::string PrecisionProfile::render_json() const {
  std::string out = "{";
  out += "\"derived\": ";
  out += derived ? "true" : "false";
  if (derived) {
    out += ", \"split\": \"" + std::string(core::split_method_name(split)) +
           "\"";
    out += ", \"rounding\": \"" + std::string(rounding_name(rounding)) + "\"";
    out += ", \"half_only\": ";
    out += half_only ? "true" : "false";
    out += ", \"planes\": " + std::to_string(planes);
    out += ", \"operation_bits\": " + std::to_string(operation_bits);
    out += ", \"derived_bits_a\": " + std::to_string(derived_bits_a);
    out += ", \"derived_bits_b\": " + std::to_string(derived_bits_b);
    out += ", \"rel_residual\": " + json_number(rel_residual);
    out += ", \"lo_plane_rel\": " + json_number(lo_plane_rel);
    out += ", \"k_per_term\": " + std::to_string(k_per_term);
    out += ", \"adds_per_element\": " + std::to_string(adds_per_element);
    out += ", \"terms\": [";
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"a_plane\": " + std::to_string(terms[i].a_plane) +
             ", \"b_plane\": " + std::to_string(terms[i].b_plane) +
             ", \"k_lanes_per_trip\": " +
             std::to_string(terms[i].k_lanes_per_trip) +
             ", \"rel_weight\": " + json_number(terms[i].rel_weight) + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

double derived_residual_rel(Rounding rounding, int planes) noexcept {
  if (planes < 1) return 1.0;
  switch (rounding) {
    case Rounding::kHalfDirect:
      // Single RN16 conversion: half-ulp of the 11-bit significand.
      return 0x1p-11;
    case Rounding::kRoundNearest:
      // Each RN16 level keeps 11 bits plus the sign-encoded extra bit of
      // the next residual; p levels leave a residual of 2^-11p.
      return std::ldexp(1.0, -11 * planes);
    case Rounding::kTruncate:
      // RZ16 loses the sign-bit trick: one fewer effective bit per stack.
      return std::ldexp(1.0, 1 - 11 * planes);
    case Rounding::kNone:
      break;
  }
  return 1.0;
}

double derived_lo_plane_rel(Rounding rounding) noexcept {
  switch (rounding) {
    case Rounding::kRoundNearest:
      // |lo| <= RN16(|x - hi|) <= (half-ulp of hi) * (1 + u16).
      return std::ldexp(1.0 + 0x1p-11, -11);
    case Rounding::kTruncate:
      // Truncation residual reaches a full ulp of hi.
      return 0x1p-10;
    case Rounding::kHalfDirect:
    case Rounding::kNone:
      break;
  }
  return 0.0;
}

int effective_bits(double rel) noexcept {
  if (!(rel > 0.0)) return 24;  // exact decomposition: binary32 accumulate
  const int bits = static_cast<int>(std::floor(-std::log2(rel))) - 1;
  return std::clamp(bits, 0, 24);
}

int documented_operation_bits(int emulation_instructions) noexcept {
  switch (emulation_instructions) {
    case 1:
      return 10;
    case 9:
      return 24;
    default:
      return 21;  // Alg. 1 and the Dekker-style variant: 2-plane round split
  }
}

PrecisionProfile run_precision_dataflow_pass(const Kernel& kernel,
                                             const Dataflow& dataflow,
                                             const PrecisionOptions& options,
                                             DiagnosticEngine& engine) {
  PrecisionProfile profile;
  const std::size_t n = dataflow.size();

  // An untagged kernel is opaque: no profile, no diagnostics.
  bool any_tagged = false;
  for (std::size_t i = 0; i < n && !any_tagged; ++i) {
    any_tagged = dataflow.at(i).instr->num.tagged();
  }
  if (!any_tagged) return profile;

  // Decode the claimed scheme; unknown emulation counts fall back to the
  // plane count the tags themselves exhibit.
  const EmulationScheme scheme =
      emulation_scheme(options.emulation_instructions);
  int planes = scheme.known ? scheme.planes : 0;
  const int instrs_per_term = scheme.known ? scheme.instrs_per_term : 1;
  Rounding observed = Rounding::kNone;
  for (std::size_t i = 0; i < n; ++i) {
    const NumericTag& tag = dataflow.at(i).instr->num;
    if (observed == Rounding::kNone && tag.rounding != Rounding::kNone) {
      observed = tag.rounding;
    }
    if (!scheme.known) {
      const std::uint8_t mask = tag.a_planes | tag.b_planes;
      for (int p = 0; p < 8; ++p) {
        if ((mask >> p) & 1u) planes = std::max(planes, p + 1);
      }
      planes = std::max({planes, tag.term_a + 1, tag.term_b + 1});
    }
  }
  if (planes <= 0) planes = 1;
  const Rounding expected = plane_rounding(options.split, planes == 1);

  // -- fixpoint: abstract values per definition site + the shared region --
  std::vector<AbsVal> val(n);
  AbsVal shared;
  auto value_of_src = [&](std::size_t i, const RegRange& src) {
    AbsVal joined;
    for (const std::uint32_t def : dataflow.defs_of_use(i)) {
      const Instr& producer = *dataflow.at(def).instr;
      if (producer.dst.overlaps(src)) joined.join(val[def]);
    }
    return joined;
  };
  auto planes_from_tag = [](const NumericTag& tag) {
    AbsVal value;
    value.kind = AbsVal::Kind::kPlanes;
    value.a_planes = tag.a_planes;
    value.b_planes = tag.b_planes;
    value.roundings = tag.rounding != Rounding::kNone
                          ? rounding_bit(tag.rounding)
                          : std::uint8_t{0};
    return value;
  };
  bool changed = true;
  for (int sweep = 0; changed && sweep < 64; ++sweep) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Instr& instr = *dataflow.at(i).instr;
      AbsVal out;
      switch (instr.op) {
        case Op::kLdg:
          // Plane loads are exact: the host split pass already produced
          // the binary16 payload; the rounding happened there.
          out = instr.num.has_planes() ? planes_from_tag(instr.num)
                                       : AbsVal{AbsVal::Kind::kScalar};
          break;
        case Op::kLds:
          if (instr.num.has_planes()) {
            out = planes_from_tag(instr.num);
            if (shared.kind == AbsVal::Kind::kPlanes) {
              out.roundings |= shared.roundings;
            }
          } else if (shared.kind != AbsVal::Kind::kBottom) {
            out = shared;  // untagged LDS: whatever the region holds
          } else {
            out.kind = AbsVal::Kind::kScalar;
          }
          break;
        case Op::kSts: {
          AbsVal staged;
          for (const RegRange& src : instr.srcs) {
            staged.join(value_of_src(i, src));
          }
          if (instr.num.has_planes()) staged.join(planes_from_tag(instr.num));
          if (staged.kind == AbsVal::Kind::kPlanes) {
            changed |= shared.join(staged);
          }
          break;
        }
        case Op::kHmma: {
          out.kind = AbsVal::Kind::kAccum;
          if (instr.srcs.size() >= 3) {
            const AbsVal acc_in = value_of_src(i, instr.srcs[2]);
            if (acc_in.kind == AbsVal::Kind::kAccum) {
              out.term_mask = acc_in.term_mask;
            }
          }
          if (instr.num.has_term() && instr.num.term_a < planes &&
              instr.num.term_b < planes) {
            out.term_mask |=
                1u << (instr.num.term_a * planes + instr.num.term_b);
          }
          break;
        }
        case Op::kMov:
        case Op::kFfma:
        case Op::kIadd:
          for (const RegRange& src : instr.srcs) {
            out.join(value_of_src(i, src));
          }
          if (out.kind == AbsVal::Kind::kBottom) {
            out.kind = AbsVal::Kind::kScalar;
          }
          break;
        default:
          break;  // STG checked post-fixpoint; BAR/BRA/EXIT carry nothing
      }
      if (instr.dst.valid()) changed |= val[i].join(out);
    }
  }

  // -- post-fixpoint checks ----------------------------------------------

  // EG503: every tag must encode the rounding the configured split
  // produces; a mismatch means the kernel multiplies planes the error
  // model's constants do not describe.
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = *dataflow.at(i).instr;
    if (instr.num.rounding == Rounding::kNone ||
        instr.num.rounding == expected) {
      continue;
    }
    engine.report(
        "EG503", Severity::kError, dataflow.at(i).loc,
        "plane data tagged " + std::string(rounding_name(instr.num.rounding)) +
            " but the configured " +
            std::string(core::split_method_name(options.split)) +
            " produces " + std::string(rounding_name(expected)) + " planes");
  }

  // HMMA term routing + per-(accumulator, term) k-lane accounting.
  std::map<std::pair<std::int32_t, int>, std::uint64_t> body_hmma_count;
  std::uint32_t computed_mask = 0;
  bool have_hmma_loc = false;
  SourceLoc first_hmma_loc;
  SourceLoc first_tag_loc;
  bool have_tag_loc = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = *dataflow.at(i).instr;
    if (!have_tag_loc && instr.num.tagged()) {
      first_tag_loc = dataflow.at(i).loc;
      have_tag_loc = true;
    }
    if (instr.op != Op::kHmma || !instr.num.has_term()) continue;
    const SourceLoc loc = dataflow.at(i).loc;
    if (!have_hmma_loc) {
      first_hmma_loc = loc;
      have_hmma_loc = true;
    }
    const int ta = instr.num.term_a;
    const int tb = instr.num.term_b;
    if (ta >= planes || tb >= planes) {
      engine.report("EG502", Severity::kError, loc,
                    "HMMA computes term " + term_text(ta, tb) +
                        " outside the " + std::to_string(planes) +
                        "-plane scheme");
      continue;
    }
    const int term = ta * planes + tb;
    computed_mask |= 1u << term;
    if (instr.srcs.size() >= 2) {
      const AbsVal a_val = value_of_src(i, instr.srcs[0]);
      const AbsVal b_val = value_of_src(i, instr.srcs[1]);
      auto check_side = [&](const AbsVal& value, std::uint8_t AbsVal::*mask,
                            int plane, const char* side) {
        if (value.kind == AbsVal::Kind::kConflict) {
          engine.report("EG502", Severity::kError, loc,
                        std::string(side) +
                            " operand mixes plane and accumulator data");
          return;
        }
        if (value.kind == AbsVal::Kind::kPlanes &&
            ((value.*mask >> plane) & 1u) == 0) {
          engine.report(
              "EG502", Severity::kError, loc,
              "term " + term_text(ta, tb) + " is mis-routed: the " + side +
                  " operand does not carry plane " + std::to_string(plane));
        }
      };
      check_side(a_val, &AbsVal::a_planes, ta, "A");
      check_side(b_val, &AbsVal::b_planes, tb, "B");
    }
    if (loc.section == Section::kBody && instr.dst.valid()) {
      ++body_hmma_count[{instr.dst.index, term}];
    }
  }
  const SourceLoc anchor = have_hmma_loc ? first_hmma_loc : first_tag_loc;

  // LDS must only declare planes some STS actually staged.
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = *dataflow.at(i).instr;
    if (instr.op != Op::kLds || !instr.num.has_planes()) continue;
    const std::uint8_t missing_a =
        shared.kind == AbsVal::Kind::kPlanes
            ? static_cast<std::uint8_t>(instr.num.a_planes & ~shared.a_planes)
            : instr.num.a_planes;
    const std::uint8_t missing_b =
        shared.kind == AbsVal::Kind::kPlanes
            ? static_cast<std::uint8_t>(instr.num.b_planes & ~shared.b_planes)
            : instr.num.b_planes;
    if (missing_a == 0 && missing_b == 0) continue;
    engine.report("EG502", Severity::kError, dataflow.at(i).loc,
                  "LDS consumes plane data no STS ever staged (A mask 0x" +
                      std::to_string(missing_a) + ", B mask 0x" +
                      std::to_string(missing_b) + ")");
  }

  // EG502: the scheme's full term grid must be computed -- the a-priori
  // error model charges every term of the emulation as present.
  for (int term = 0; term < planes * planes; ++term) {
    if ((computed_mask >> term) & 1u) continue;
    engine.report("EG502", Severity::kError, anchor,
                  "split-product term " +
                      term_text(term / planes, term % planes) +
                      " is never computed by any HMMA; the error model "
                      "charges it as computed");
  }

  // EG502: the combine path must commit every computed term -- an epilogue
  // store whose accumulator lacks a term silently drops that product.
  std::set<std::uint32_t> reported_store_masks;
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = *dataflow.at(i).instr;
    if (instr.op != Op::kStg) continue;
    AbsVal stored;
    for (const RegRange& src : instr.srcs) {
      stored.join(value_of_src(i, src));
    }
    if (stored.kind != AbsVal::Kind::kAccum) continue;
    const std::uint32_t dropped = computed_mask & ~stored.term_mask;
    if (dropped == 0 || !reported_store_masks.insert(dropped).second) {
      continue;
    }
    for (int term = 0; term < planes * planes; ++term) {
      if (((dropped >> term) & 1u) == 0) continue;
      engine.report("EG502", Severity::kError, dataflow.at(i).loc,
                    "stored accumulator drops computed term " +
                        term_text(term / planes, term % planes));
    }
  }

  // EG502: every (accumulator, term) pair must cover the reduction
  // uniformly -- a term present on some k-lanes only is a partial product.
  std::uint64_t lanes_per_trip = 0;
  if (!body_hmma_count.empty()) {
    bool uniform = true;
    for (const auto& [key, count] : body_hmma_count) {
      const std::uint64_t lanes =
          count * kHmmaKLanes / static_cast<std::uint64_t>(instrs_per_term);
      if (lanes_per_trip == 0) lanes_per_trip = lanes;
      uniform = uniform && lanes == lanes_per_trip;
    }
    if (!uniform) {
      engine.report("EG502", Severity::kError, anchor,
                    "non-uniform k-lane coverage across (accumulator, term) "
                    "pairs: some split-product terms cover only part of the "
                    "reduction");
    } else if (options.expected_k_lanes_per_trip >= 0 &&
               lanes_per_trip != static_cast<std::uint64_t>(
                                     options.expected_k_lanes_per_trip)) {
      engine.report(
          "EG502", Severity::kError, anchor,
          "each term covers " + std::to_string(lanes_per_trip) +
              " k-lanes per trip; the tiling's reduction expects " +
              std::to_string(options.expected_k_lanes_per_trip));
    }
  }

  // -- derive the profile -------------------------------------------------
  std::uint8_t a_used = 0;
  std::uint8_t b_used = 0;
  for (int term = 0; term < planes * planes; ++term) {
    if (((computed_mask >> term) & 1u) == 0) continue;
    a_used |= static_cast<std::uint8_t>(1u << (term / planes));
    b_used |= static_cast<std::uint8_t>(1u << (term % planes));
  }
  auto leading_planes = [](std::uint8_t mask) {
    int count = 0;
    while ((mask >> count) & 1u) ++count;
    return count;
  };
  const int pa = leading_planes(a_used);
  const int pb = leading_planes(b_used);
  const double res_a = derived_residual_rel(observed, pa);
  const double res_b = derived_residual_rel(observed, pb);

  profile.derived = true;
  profile.rounding = observed;
  profile.planes = planes;
  profile.half_only = planes == 1 && observed == Rounding::kHalfDirect;
  if (observed == Rounding::kTruncate) {
    profile.split = core::SplitMethod::kTruncateSplit;
  } else if (observed == Rounding::kRoundNearest) {
    profile.split = core::SplitMethod::kRoundSplit;
  } else {
    profile.split = options.split;
  }
  profile.term_mask = computed_mask;
  profile.derived_bits_a = effective_bits(res_a);
  profile.derived_bits_b = effective_bits(res_b);
  profile.operation_bits =
      std::min(profile.derived_bits_a, profile.derived_bits_b);
  profile.rel_residual = std::max(res_a, res_b);
  profile.lo_plane_rel = derived_lo_plane_rel(observed);
  profile.k_per_term = lanes_per_trip * kernel.loop_trips;
  profile.adds_per_element =
      static_cast<std::uint64_t>(std::popcount(computed_mask)) *
      profile.k_per_term;
  for (int term = 0; term < planes * planes; ++term) {
    if (((computed_mask >> term) & 1u) == 0) continue;
    TermInfo info;
    info.a_plane = term / planes;
    info.b_plane = term % planes;
    info.k_lanes_per_trip = lanes_per_trip;
    info.rel_weight = std::ldexp(1.0, -11 * (info.a_plane + info.b_plane));
    profile.terms.push_back(info);
  }

  // EG501: the derived operation precision must meet the documented
  // profile (the paper's §3.2 claim the rest of the stack is sold on).
  if (profile.operation_bits < options.documented_bits) {
    engine.report("EG501", Severity::kWarning, anchor,
                  "derived operation precision is " +
                      std::to_string(profile.operation_bits) +
                      " bits, below the documented " +
                      std::to_string(options.documented_bits) +
                      "-bit profile");
  }

  // EG510: the hand-written a-priori constants (core::split_*) must agree
  // with what the instruction stream derives -- at least as large (sound)
  // and no more than 2x (tight enough that model and kernel describe the
  // same scheme). Only the two-plane split has hand constants to check.
  if (options.check_hand_model && planes == 2 &&
      (observed == Rounding::kRoundNearest ||
       observed == Rounding::kTruncate)) {
    const core::SplitMethod method = observed == Rounding::kRoundNearest
                                         ? core::SplitMethod::kRoundSplit
                                         : core::SplitMethod::kTruncateSplit;
    const double hand_res = options.hand_residual_rel >= 0.0
                                ? options.hand_residual_rel
                                : core::split_residual_bound(method, 1.0);
    const double hand_lo = options.hand_lo_plane_rel >= 0.0
                               ? options.hand_lo_plane_rel
                               : core::split_lo_plane_bound(method, 1.0);
    const double derived_res = derived_residual_rel(observed, 2);
    const double derived_lo = derived_lo_plane_rel(observed);
    auto check_constant = [&](const char* name, double hand, double derived) {
      if (hand < derived) {
        engine.report("EG510", Severity::kError, anchor,
                      std::string(name) + " hand constant " +
                          json_number(hand) +
                          " is below the statically derived " +
                          json_number(derived) + ": the a-priori bound is "
                          "unsound for this kernel");
      } else if (hand > 2.0 * derived) {
        engine.report("EG510", Severity::kError, anchor,
                      std::string(name) + " hand constant " +
                          json_number(hand) + " is more than 2x the derived " +
                          json_number(derived) +
                          ": model and kernel describe different schemes");
      }
    };
    check_constant("residual", hand_res, derived_res);
    check_constant("lo-plane", hand_lo, derived_lo);
  }

  return profile;
}

}  // namespace egemm::sass::analysis
