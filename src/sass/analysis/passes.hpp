#pragma once
// The SASS lint passes. Each pass reads a Kernel (plus optional context in
// AnalysisOptions) and reports through a DiagnosticEngine.
//
// Diagnostic code table (see DESIGN.md "SASS static analysis"):
//
//   EG101 error   RAW: source read before waiting on its load barrier
//   EG102 error   RAW: source read from an in-flight load with no barrier
//   EG103 error   WAR: destination overwritten with a pending guarded read
//   EG104 error   WAW: destination overwritten while a load is in flight
//   EG105 error   dependency barrier re-armed while guarding registers
//   EG110 warning dependency barrier armed but never waited anywhere
//   EG111 error   wait on a dependency barrier no instruction arms
//   EG112 note    wait never finds its barrier pending (redundant wait)
//   EG201 error   source register read before any definite initialization
//   EG202 warning register write that no instruction can ever read
//   EG203 warning STS whose data no LDS ever consumes (dead shared store)
//   EG301 warning shared-memory bank conflicts in the LDS fragment loads
//   EG302 warning shared-memory bank conflicts in the STS staging stores
//   EG310 note    >= 3 source operands drawn from one register bank
//   EG401 warning register allocation within 10% of the budget (near-spill)
//   EG402 error   register demand exceeds the per-thread budget
//   EG403 warning IR register usage diverges from the analytic model (Eq. 8)
//   EG501 warning derived operation precision below the documented profile
//   EG502 error   a combine path drops/mis-routes a charged split term
//   EG503 error   rounding-mode mismatch against the split configuration
//   EG510 error   derived error constants disagree with the hand model
//
// The scoreboard pass is the old src/sass/verifier.cpp logic rehosted;
// verify_kernel() remains as a thin adapter over it.

#include "gemm/tiling.hpp"
#include "sass/analysis/dataflow.hpp"
#include "sass/analysis/diagnostics.hpp"
#include "sass/analysis/precision.hpp"
#include "sass/ir.hpp"
#include "sass/regalloc.hpp"

namespace egemm::sass::analysis {

struct AnalysisOptions {
  /// Body trips the trace-based passes walk (>= 2 catches cross-iteration
  /// hazards; 3 is the default used across the test suite).
  int unroll = 3;

  /// Tiling context for the bank-conflict and register-pressure passes;
  /// leave `has_tile` false for kernels of unknown provenance (e.g. a
  /// hand-written .sass file) and those passes degrade gracefully.
  gemm::TileConfig tile;
  bool has_tile = false;

  /// Shared-memory row pitch in halves for the bank model; -1 derives the
  /// padded pitch (bk + 4) from `tile`, matching TileConfig's layout.
  int shared_pitch_halves = -1;

  /// Per-thread register budget for the pressure pass.
  int register_budget = 255;
  /// Regalloc outcome, when the caller ran it (enables EG401/EG402/EG403
  /// against the real allocation instead of the dataflow peak-live bound).
  const AllocationReport* alloc = nullptr;
  /// True once operands are physical R0..R255; enables the register-bank
  /// model (bank assignment is meaningless for virtual indexes).
  bool physical_registers = false;

  /// Precision-dataflow certification (EG5xx). Only sound on kernels with
  /// virtual operands -- physical register reuse merges unrelated def-use
  /// chains -- so run_all_passes skips it when `physical_registers` is
  /// set (build_egemm_kernel runs it pre-regalloc instead).
  PrecisionOptions precision;
  /// When non-null, receives the profile the precision pass derived.
  PrecisionProfile* precision_profile = nullptr;
};

/// EG101-EG105: the dependency-barrier scoreboard (RAW/WAR/WAW hazards and
/// guarded barrier reuse) over the unrolled trace.
void run_scoreboard_pass(const Kernel& kernel, const AnalysisOptions& options,
                         DiagnosticEngine& engine);

/// EG110-EG112: barrier lifetime -- armed-but-never-waited, waits on
/// never-armed barriers, and waits that are redundant in every walked trip.
void run_barrier_lifetime_pass(const Kernel& kernel,
                               const AnalysisOptions& options,
                               DiagnosticEngine& engine);

/// EG201: reads of registers not definitely initialized on every path.
void run_uninitialized_read_pass(const Kernel& kernel, const Dataflow& dataflow,
                                 DiagnosticEngine& engine);

/// EG202/EG203: dead register writes (liveness) and dead shared stores
/// (no LDS consumes any dynamic instance of the STS in the walked trace).
void run_dead_code_pass(const Kernel& kernel, const Dataflow& dataflow,
                        const AnalysisOptions& options,
                        DiagnosticEngine& engine);

/// EG301/EG302/EG310: shared-memory bank conflicts via the
/// tcsim::warp_layout access patterns, and register-operand bank conflicts
/// (Turing's two-bank register file) once operands are physical.
void run_bank_conflict_pass(const Kernel& kernel,
                            const AnalysisOptions& options,
                            DiagnosticEngine& engine);

/// EG401-EG403: register pressure against the budget and the analytic
/// model's per-thread estimate (Eq. 8's no-spill constraint).
void run_register_pressure_pass(const Kernel& kernel, const Dataflow& dataflow,
                                const AnalysisOptions& options,
                                DiagnosticEngine& engine);

/// Runs every pass (one shared Dataflow construction).
void run_all_passes(const Kernel& kernel, const AnalysisOptions& options,
                    DiagnosticEngine& engine);

}  // namespace egemm::sass::analysis
