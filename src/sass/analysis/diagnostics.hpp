#pragma once
// Shared diagnostic infrastructure for the SASS static-analysis passes.
//
// Every pass reports through one DiagnosticEngine so a lint run produces a
// single ordered stream of findings with stable codes:
//
//   EG1xx  control-code hazards (scoreboard: RAW/WAR/WAW, barrier lifetime)
//   EG2xx  liveness (uninitialized reads, dead writes, dead shared stores)
//   EG3xx  bank conflicts (shared-memory phases, register operand banks)
//   EG4xx  register pressure (near-spill, over budget, model cross-check)
//
// A diagnostic pins down *where* in the kernel it fired (section +
// instruction index, plus the walked body trip for trace-based passes) so
// the renderers can quote the offending instruction. The engine caps the
// number of diagnostics kept per code (a broken kernel tends to repeat one
// mistake hundreds of times) and counts what it suppressed.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace egemm::sass::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };
const char* severity_name(Severity severity) noexcept;

enum class Section : std::uint8_t { kPrologue, kBody, kEpilogue };
const char* section_name(Section section) noexcept;

/// Location of a finding: instruction `index` within `section`; for passes
/// that walk the unrolled trace, `trip` is the body iteration (else -1).
struct SourceLoc {
  Section section = Section::kBody;
  std::size_t index = 0;
  std::int32_t trip = -1;

  /// "prologue[3]" / "body[1][12]" (trip then index) / "epilogue[0]".
  std::string text() const;
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

struct Diagnostic {
  std::string code;  ///< stable "EGnnn" identifier
  Severity severity = Severity::kWarning;
  SourceLoc loc;
  std::string message;
};

class DiagnosticEngine {
 public:
  /// `per_code_cap` bounds how many diagnostics are kept per code;
  /// 0 means unlimited (the verify_kernel adapter needs every occurrence).
  explicit DiagnosticEngine(std::size_t per_code_cap = 25)
      : per_code_cap_(per_code_cap) {}

  void report(std::string code, Severity severity, SourceLoc loc,
              std::string message);

  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  std::size_t count(Severity severity) const noexcept;
  std::size_t errors() const noexcept { return count(Severity::kError); }
  /// Diagnostics dropped by the per-code cap.
  std::size_t suppressed() const noexcept { return suppressed_; }
  bool has_code(const std::string& code) const noexcept;

  /// Human-readable report, one line per diagnostic plus a summary.
  std::string render_text() const;
  /// Machine-readable report: {"diagnostics": [...], "counts": {...}}.
  std::string render_json() const;

 private:
  std::size_t per_code_cap_;
  std::size_t suppressed_ = 0;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace egemm::sass::analysis
