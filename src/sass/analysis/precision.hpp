#pragma once
// Precision-dataflow certification (EG5xx): an abstract interpretation
// over the SASS kernel IR that derives the emulation scheme's operation
// precision and error profile from the instruction stream itself, instead
// of assuming the hand-written model in verify/error_model matches what
// the kernel computes.
//
// The abstract domain tracks, per register definition site and for the
// shared-memory staging region, what numeric payload a value carries:
//
//   scalar   addressing state / loop counters (no numeric content)
//   planes   split-plane data: which A/B planes (hi/lo/mid) the payload
//            contains and the rounding mode that produced them
//   accum    an accumulator: the set of split-product terms folded into
//            it so far and the per-trip HMMA k-lane count per term
//
// Transfer functions model the pipeline the paper's Alg. 1 implies:
// exact LDG of pre-split planes, STS/LDS staging (joined through one
// abstract shared region), HMMA widening f32 accumulate of one
// plane-product term, and the epilogue STG that commits the combined
// accumulator. The fixpoint runs on the def-use chains of the same
// Dataflow engine the EG2xx passes use, so loop-carried accumulation
// converges across the back edge.
//
// Diagnostics (see DESIGN.md §14 for the full table):
//
//   EG501 warning derived operation precision below the documented profile
//   EG502 error   a combine path drops (or mis-routes / only partially
//                 k-covers) a split-product term the error model charges
//                 as computed
//   EG503 error   rounding-mode mismatch between the split configuration
//                 and what the kernel's instructions encode
//   EG510 error   derived error constants disagree with the hand-coded
//                 a-priori model (core::split_* bounds)
//
// The derived PrecisionProfile closes the loop across layers:
// verify/error_model can build a PathProfile from it
// (from_static_profile) and cross-check that its a-priori worst_abs
// dominates the statically derived bound.

#include <cstdint>
#include <string>
#include <vector>

#include "core/split.hpp"
#include "sass/analysis/dataflow.hpp"
#include "sass/analysis/diagnostics.hpp"
#include "sass/ir.hpp"

namespace egemm::sass::analysis {

/// One split-product term the kernel actually accumulates.
struct TermInfo {
  int a_plane = 0;
  int b_plane = 0;
  /// Per-output-element k coverage of this term per body trip (HMMA
  /// k-lanes); equals the tile's bk when the kernel covers the reduction.
  std::uint64_t k_lanes_per_trip = 0;
  /// Relative magnitude weight of the term's product against the hi x hi
  /// product (each lo-level plane contributes a ~2^-11 factor).
  double rel_weight = 0.0;
};

/// The statically derived precision profile of a kernel.
struct PrecisionProfile {
  /// True when the kernel carried numeric tags and the split -> HMMA ->
  /// combine chain was recovered; false leaves every field meaningless.
  bool derived = false;

  core::SplitMethod split = core::SplitMethod::kRoundSplit;
  bool half_only = false;          ///< 1-plane scheme (raw RN16 inputs)
  Rounding rounding = Rounding::kNone;
  int planes = 0;                  ///< split planes per input matrix

  std::uint32_t term_mask = 0;     ///< bit (a_plane * planes + b_plane)
  std::vector<TermInfo> terms;     ///< the accumulated terms, in term order

  /// Effective significand width each side's consumed planes reconstruct
  /// (21 for a round split with both planes in play, 20 truncate, 10 for a
  /// lone hi plane) and the operation precision = min of the two sides.
  int derived_bits_a = 0;
  int derived_bits_b = 0;
  int operation_bits = 0;

  /// Derived error constants (relative to the input magnitude): per-input
  /// representation residual of the decomposition the kernel consumes, and
  /// the worst-case lo-plane magnitude (what dropped terms would cost).
  double rel_residual = 0.0;
  double lo_plane_rel = 0.0;

  /// Reduction coverage: k-lanes per term across all trips, and the
  /// accumulation chain length per output element (terms x k), which
  /// bounds the binary32 pair-sum/accumulate error via gamma_n.
  std::uint64_t k_per_term = 0;
  std::uint64_t adds_per_element = 0;

  bool term_computed(int a_plane, int b_plane) const noexcept;
  /// Human-readable one-liner + term table.
  std::string describe() const;
  /// Machine-readable object (embedded by sass_lint --json).
  std::string render_json() const;
};

struct PrecisionOptions {
  /// Master switch for run_all_passes integration.
  bool enabled = false;

  /// The split configuration the host-side plane pass was asked for; the
  /// kernel's rounding tags must encode exactly this (EG503).
  core::SplitMethod split = core::SplitMethod::kRoundSplit;

  /// Emulation scheme the kernel claims to implement; decides the
  /// expected term set the error model charges as computed (EG502).
  int emulation_instructions = 4;

  /// Documented operation-precision floor (the paper's §3.2 21-bit
  /// profile); a derived precision below it raises EG501. The 1-plane
  /// half-only scheme documents 10 bits.
  int documented_bits = 21;

  /// Expected per-term k-lane coverage per body trip (the tile's bk);
  /// -1 skips the coverage check (unknown-provenance kernels).
  std::int64_t expected_k_lanes_per_trip = -1;

  /// Cross-check the derived constants against the hand-coded a-priori
  /// model in core::split_* (EG510).
  bool check_hand_model = true;
  /// Test seams: override the hand-coded constants the EG510 cross-check
  /// compares against (-1 uses core::split_residual_bound /
  /// core::split_lo_plane_bound at unit scale).
  double hand_residual_rel = -1.0;
  double hand_lo_plane_rel = -1.0;
};

/// Runs the abstract interpretation and reports EG501/EG502/EG503/EG510.
/// Returns the derived profile; `profile.derived` is false (and no
/// diagnostics fire) when the kernel carries no numeric tags.
PrecisionProfile run_precision_dataflow_pass(const Kernel& kernel,
                                             const Dataflow& dataflow,
                                             const PrecisionOptions& options,
                                             DiagnosticEngine& engine);

/// Derived-from-first-principles error constants for a plane rounding mode
/// (binary16: 11-bit significand, u16 = 2^-11, subnormal quantum 2^-24).
/// These are what the EG510 cross-check compares against the hand model.
double derived_residual_rel(Rounding rounding, int planes) noexcept;
double derived_lo_plane_rel(Rounding rounding) noexcept;

/// floor(-log2(rel)) - 1: the effective significand width whose half-ulp
/// matches a relative representation error of `rel` (the convention under
/// which a round split carries 21 bits and a truncate split 20).
int effective_bits(double rel) noexcept;

/// The operation precision each emulation scheme documents (§3.2 profiles:
/// 10 bits half-only, 21 bits for the 2-plane round split, 24 -- the
/// binary32-accumulate ceiling -- for the 3-plane split).
int documented_operation_bits(int emulation_instructions) noexcept;

}  // namespace egemm::sass::analysis
