#pragma once
// Virtual -> physical register allocation with the §5.2 stage-reuse
// heuristic, at kernel granularity.
//
// Values whose live range is confined to one stage are overlaid on the
// same physical registers as other stages' locals; values alive in the
// main loop or across stages get dedicated registers. This is the
// allocator that lets the hand-written kernel sit at 232 of 256 registers
// instead of spilling.

#include <vector>

#include "sass/ir.hpp"

namespace egemm::sass {

struct AllocationReport {
  bool success = false;
  int physical_registers = 0;   ///< peak per-thread usage after reuse
  int naive_registers = 0;      ///< without cross-stage overlay
  int global_values = 0;        ///< ranges alive across stages / in the loop
  int overlay_values = 0;       ///< stage-local ranges that were overlaid
  std::vector<std::string> errors;
};

/// Rewrites every operand of `kernel` from virtual to physical indexes.
/// Fails (leaving the kernel untouched) when the demand exceeds `budget`
/// registers per thread.
AllocationReport allocate_kernel_registers(Kernel& kernel, int budget = 255);

}  // namespace egemm::sass
