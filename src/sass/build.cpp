#include "sass/build.hpp"

#include "sass/analysis/passes.hpp"
#include "util/assert.hpp"

namespace egemm::sass {

BuiltKernel build_egemm_kernel(const BuildOptions& options) {
  EGEMM_EXPECTS(options.tile.valid());
  EGEMM_EXPECTS(options.k_iterations >= 1);

  BuiltKernel built;
  CodegenParams params;
  params.tile = options.tile;
  params.k_iterations = options.k_iterations;
  params.emulation_instructions = options.emulation_instructions;
  params.split = options.split;
  built.kernel = generate_egemm_kernel(params);
  if (options.latency_hiding) {
    built.schedule = schedule_latency_hiding(built.kernel);
  }

  // Precision certification runs on the scheduled kernel while operands
  // are still virtual: physical register reuse would merge unrelated
  // def-use chains and fake plane conflicts.
  if (options.certify_precision) {
    analysis::PrecisionOptions popts;
    popts.enabled = true;
    popts.split = options.split;
    popts.emulation_instructions = options.emulation_instructions;
    popts.documented_bits =
        analysis::documented_operation_bits(options.emulation_instructions);
    popts.expected_k_lanes_per_trip = options.tile.bk;
    const analysis::Dataflow dataflow(built.kernel);
    built.precision = analysis::run_precision_dataflow_pass(
        built.kernel, dataflow, popts, built.diagnostics);
  }

  analysis::AnalysisOptions aopts;
  aopts.unroll = options.lint_unroll;
  aopts.tile = options.tile;
  aopts.has_tile = true;
  aopts.register_budget = options.register_budget;
  if (options.allocate) {
    built.alloc =
        allocate_kernel_registers(built.kernel, options.register_budget);
    aopts.alloc = &built.alloc;
    aopts.physical_registers = built.alloc.success;
  }
  analysis::run_all_passes(built.kernel, aopts, built.diagnostics);
  return built;
}

bool has_blocking_errors(const analysis::DiagnosticEngine& engine) {
  for (const analysis::Diagnostic& diagnostic : engine.diagnostics()) {
    if (diagnostic.severity != analysis::Severity::kError) continue;
    if (diagnostic.code.rfind("EG1", 0) == 0 ||
        diagnostic.code.rfind("EG2", 0) == 0 ||
        diagnostic.code.rfind("EG5", 0) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace egemm::sass
