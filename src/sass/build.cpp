#include "sass/build.hpp"

#include "sass/analysis/passes.hpp"
#include "util/assert.hpp"

namespace egemm::sass {

BuiltKernel build_egemm_kernel(const BuildOptions& options) {
  EGEMM_EXPECTS(options.tile.valid());
  EGEMM_EXPECTS(options.k_iterations >= 1);

  BuiltKernel built;
  CodegenParams params;
  params.tile = options.tile;
  params.k_iterations = options.k_iterations;
  params.emulation_instructions = options.emulation_instructions;
  built.kernel = generate_egemm_kernel(params);
  if (options.latency_hiding) {
    built.schedule = schedule_latency_hiding(built.kernel);
  }

  analysis::AnalysisOptions aopts;
  aopts.unroll = options.lint_unroll;
  aopts.tile = options.tile;
  aopts.has_tile = true;
  aopts.register_budget = options.register_budget;
  if (options.allocate) {
    built.alloc =
        allocate_kernel_registers(built.kernel, options.register_budget);
    aopts.alloc = &built.alloc;
    aopts.physical_registers = built.alloc.success;
  }
  analysis::run_all_passes(built.kernel, aopts, built.diagnostics);
  return built;
}

bool has_blocking_errors(const analysis::DiagnosticEngine& engine) {
  for (const analysis::Diagnostic& diagnostic : engine.diagnostics()) {
    if (diagnostic.severity != analysis::Severity::kError) continue;
    if (diagnostic.code.rfind("EG1", 0) == 0 ||
        diagnostic.code.rfind("EG2", 0) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace egemm::sass
