#include "sass/schedule.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "util/assert.hpp"

namespace egemm::sass {

namespace {

constexpr int kWb[2] = {0, 4};  ///< fragment-ready barrier per buffer
constexpr int kRb[2] = {1, 5};  ///< fragment-read barrier per buffer
constexpr int kBarStaged = 2;
constexpr int kBarStagingRead = 3;

std::uint8_t wait(int barrier) {
  return static_cast<std::uint8_t>(1u << barrier);
}

struct RangeLess {
  bool operator()(const RegRange& a, const RegRange& b) const noexcept {
    return a.index != b.index ? a.index < b.index : a.width < b.width;
  }
};

}  // namespace

ScheduleStats schedule_latency_hiding(Kernel& kernel) {
  ScheduleStats stats;

  // Partition the naive body.
  std::int32_t steps = 0;
  for (const Instr& instr : kernel.body) {
    steps = std::max(steps, instr.step + 1);
  }
  EGEMM_EXPECTS(steps >= 1);
  std::vector<std::vector<Instr>> lds(static_cast<std::size_t>(steps));
  std::vector<std::vector<Instr>> hmma(static_cast<std::size_t>(steps));
  std::vector<Instr> ldg;
  std::vector<Instr> tail;
  for (const Instr& instr : kernel.body) {
    if (instr.op == Op::kLds && instr.step >= 0) {
      lds[static_cast<std::size_t>(instr.step)].push_back(instr);
    } else if (instr.op == Op::kHmma && instr.step >= 0) {
      hmma[static_cast<std::size_t>(instr.step)].push_back(instr);
    } else if (instr.op == Op::kLdg) {
      ldg.push_back(instr);
    } else {
      tail.push_back(instr);
    }
  }

  // Double-buffer the fragment registers: every LDS destination gets a
  // shadow range used on odd steps.
  std::map<RegRange, RegRange, RangeLess> shadow;
  for (const auto& group : lds) {
    for (const Instr& instr : group) {
      if (!instr.dst.valid() || shadow.count(instr.dst) != 0) continue;
      const RegRange copy{kernel.virtual_regs, instr.dst.width};
      kernel.virtual_regs += instr.dst.width;
      stats.added_registers += instr.dst.width;
      shadow.emplace(instr.dst, copy);
    }
  }
  auto rename = [&shadow](Instr& instr, int buffer) {
    if (buffer == 0) return;
    if (instr.dst.valid()) {
      const auto it = shadow.find(instr.dst);
      if (it != shadow.end()) instr.dst = it->second;
    }
    for (RegRange& src : instr.srcs) {
      const auto it = shadow.find(src);
      if (it != shadow.end()) src = it->second;
    }
  };

  auto emit_lds_group = [&](std::vector<Instr>& out, std::size_t step) {
    const int buffer = static_cast<int>(step) % 2;
    auto group = lds[step];  // copy: renaming mutates
    for (std::size_t i = 0; i < group.size(); ++i) {
      Instr& instr = group[i];
      rename(instr, buffer);
      instr.ctrl = Ctrl{};
      // WAR against the HMMA burst that read this buffer two steps ago;
      // by now its read barrier has long cleared, so this wait is free.
      if (i == 0) instr.ctrl.wait_mask = wait(kRb[buffer]);
      if (i + 1 == group.size()) instr.ctrl.write_barrier = kWb[buffer];
      out.push_back(instr);
      ++stats.hoisted_lds;
    }
  };

  // Rebuild the body in the Fig. 6 order.
  std::vector<Instr> body;
  body.reserve(kernel.body.size());
  emit_lds_group(body, 0);  // prime buffer 0

  const std::size_t ldg_chunk =
      (ldg.size() + static_cast<std::size_t>(steps) - 1) /
      static_cast<std::size_t>(steps);
  std::size_t ldg_cursor = 0;
  for (std::size_t s = 0; s < static_cast<std::size_t>(steps); ++s) {
    // A slice of the next tile's global loads, spread across the steps.
    const std::size_t slice_end =
        std::min(ldg.size(), ldg_cursor + ldg_chunk);
    for (; ldg_cursor < slice_end; ++ldg_cursor) {
      Instr instr = ldg[ldg_cursor];
      instr.ctrl = Ctrl{};
      if (ldg_cursor == 0) instr.ctrl.wait_mask = wait(kBarStagingRead);
      if (ldg_cursor + 1 == ldg.size()) instr.ctrl.write_barrier = kBarStaged;
      body.push_back(instr);
      ++stats.spread_ldg;
    }
    // This step's compute, reading buffer s % 2, with the *next* step's
    // fragment loads interleaved a third of the way into the burst
    // (Fig. 6 draws exactly this LDS-between-HMMAs pattern). By then the
    // target buffer's read barrier -- armed by the HMMA burst two steps
    // back -- has long cleared, so the prefetch costs no tensor-pipe idle
    // cycles, unlike a clean group-before-group hoist.
    const int buffer = static_cast<int>(s) % 2;
    auto group = hmma[s];
    const std::size_t interleave_at = group.size() / 3;
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i == interleave_at && s + 1 < static_cast<std::size_t>(steps)) {
        emit_lds_group(body, s + 1);
      }
      Instr& instr = group[i];
      rename(instr, buffer);
      instr.ctrl = Ctrl{};
      if (i == 0) instr.ctrl.wait_mask = wait(kWb[buffer]);
      if (i + 1 == group.size()) instr.ctrl.read_barrier = kRb[buffer];
      body.push_back(instr);
    }
  }

  // The deferred tail: barrier, STS (waits for the spread LDG), barrier,
  // pointer updates, branch -- preserved from the naive order, with the
  // STS wait retargeted at the staging barrier.
  bool first_sts = true;
  for (Instr instr : tail) {
    if (instr.op == Op::kSts) {
      instr.ctrl.wait_mask = first_sts ? wait(kBarStaged) : 0;
      first_sts = false;
    }
    body.push_back(instr);
  }

  kernel.body = std::move(body);
  kernel.name += " [latency-hiding]";
  return stats;
}

}  // namespace egemm::sass
