#pragma once
// Per-warp SASS code generation for the EGEMM-TC block kernel.
//
// Emits the kernel one warp's thread executes, in the *naive* order: every
// k'-step loads its A/B fragments into a single buffer immediately before
// the HMMA burst that consumes them, and the next block tile's global
// loads sit in a clump after the compute. Control codes are assigned
// conservatively (each fragment load/consume pair synchronizes through
// dependency barriers). The §5.1 optimization is a separate pass
// (schedule.hpp) so the ablation compares a real before/after.

#include "core/split.hpp"
#include "gemm/tiling.hpp"
#include "sass/ir.hpp"

namespace egemm::sass {

struct CodegenParams {
  gemm::TileConfig tile = gemm::table4_config();
  std::uint32_t k_iterations = 256;
  int emulation_instructions = 4;  ///< Alg. 1 (4) or Dekker-style (16)
  /// Split method the host-side plane pass uses; stamped into the numeric
  /// tags so the precision-dataflow pass can check the kernel against it.
  core::SplitMethod split = core::SplitMethod::kRoundSplit;
};

/// How an emulation-instruction count decodes into split planes and
/// HMMA-per-term redundancy. The schemes the toolchain knows:
///   1  -> half-only (1 plane, raw RN16 inputs)
///   4  -> Alg. 1 (2 planes, one HMMA per split-product term)
///   9  -> 3-way split (3 planes, one HMMA per term)
///   16 -> Dekker-style (2 planes, 4 HMMA per term: TwoProd compensation)
/// Unknown counts yield known=false and codegen emits no numeric tags.
struct EmulationScheme {
  bool known = false;
  int planes = 0;
  int instrs_per_term = 1;
  int terms() const noexcept { return planes * planes; }
};
EmulationScheme emulation_scheme(int emulation_instructions) noexcept;

/// The rounding tag a plane produced by `split` carries (`half_only` is
/// the 1-plane scheme: a single direct RN16 conversion).
Rounding plane_rounding(core::SplitMethod split, bool half_only) noexcept;

/// Plane payload mask of staging/fragment buffer `index` out of `count`
/// buffers covering `planes` planes: plane p lives in the buffer range
/// [p*count/planes, max(p*count/planes + 1, (p+1)*count/planes)). With
/// count >= planes the ranges partition the buffers; with fewer buffers
/// than planes, buffers carry several planes each. Always non-empty.
std::uint8_t plane_mask_for_buffer(std::uint32_t index, std::uint32_t count,
                                   int planes) noexcept;

/// Generates the naive-order kernel. Register operands are virtual; run
/// allocate_kernel_registers() to map them to physical R0..R255.
Kernel generate_egemm_kernel(const CodegenParams& params);

/// Per-warp work volumes implied by the tiling (used by codegen and the
/// tests that cross-check it against tcsim::egemm_iteration_shape).
struct WarpShape {
  std::uint32_t ldg_per_iter;        ///< LDG.E.128 per thread
  std::uint32_t sts_per_iter;        ///< STS.128 per thread
  std::uint32_t lds_per_step;        ///< LDS.128 per thread per k'-step
  std::uint32_t hmma_per_step;       ///< HMMA.1688 per thread per k'-step
  std::uint32_t steps;
  std::uint32_t tile_positions;      ///< m16n8 accumulator tiles per warp
};
WarpShape warp_shape(const gemm::TileConfig& tile,
                     int emulation_instructions);

}  // namespace egemm::sass
