#pragma once
// Per-warp SASS code generation for the EGEMM-TC block kernel.
//
// Emits the kernel one warp's thread executes, in the *naive* order: every
// k'-step loads its A/B fragments into a single buffer immediately before
// the HMMA burst that consumes them, and the next block tile's global
// loads sit in a clump after the compute. Control codes are assigned
// conservatively (each fragment load/consume pair synchronizes through
// dependency barriers). The §5.1 optimization is a separate pass
// (schedule.hpp) so the ablation compares a real before/after.

#include "gemm/tiling.hpp"
#include "sass/ir.hpp"

namespace egemm::sass {

struct CodegenParams {
  gemm::TileConfig tile = gemm::table4_config();
  std::uint32_t k_iterations = 256;
  int emulation_instructions = 4;  ///< Alg. 1 (4) or Dekker-style (16)
};

/// Generates the naive-order kernel. Register operands are virtual; run
/// allocate_kernel_registers() to map them to physical R0..R255.
Kernel generate_egemm_kernel(const CodegenParams& params);

/// Per-warp work volumes implied by the tiling (used by codegen and the
/// tests that cross-check it against tcsim::egemm_iteration_shape).
struct WarpShape {
  std::uint32_t ldg_per_iter;        ///< LDG.E.128 per thread
  std::uint32_t sts_per_iter;        ///< STS.128 per thread
  std::uint32_t lds_per_step;        ///< LDS.128 per thread per k'-step
  std::uint32_t hmma_per_step;       ///< HMMA.1688 per thread per k'-step
  std::uint32_t steps;
  std::uint32_t tile_positions;      ///< m16n8 accumulator tiles per warp
};
WarpShape warp_shape(const gemm::TileConfig& tile,
                     int emulation_instructions);

}  // namespace egemm::sass
