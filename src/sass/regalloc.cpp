#include "sass/regalloc.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace egemm::sass {

namespace {

struct RangeInfo {
  std::int32_t width = 0;
  std::int32_t min_stage = 99;
  std::int32_t max_stage = -1;
  std::int32_t physical = -1;
};

void observe(std::map<std::int32_t, RangeInfo>& ranges, const RegRange& range,
             std::int32_t stage) {
  if (!range.valid()) return;
  RangeInfo& info = ranges[range.index];
  info.width = std::max(info.width, range.width);
  info.min_stage = std::min(info.min_stage, stage);
  info.max_stage = std::max(info.max_stage, stage);
}

void scan(const std::vector<Instr>& instrs,
          std::map<std::int32_t, RangeInfo>& ranges) {
  for (const Instr& instr : instrs) {
    observe(ranges, instr.dst, instr.stage);
    for (const RegRange& src : instr.srcs) observe(ranges, src, instr.stage);
  }
}

void rewrite(std::vector<Instr>& instrs,
             const std::map<std::int32_t, RangeInfo>& ranges) {
  auto remap = [&ranges](RegRange& range) {
    if (!range.valid()) return;
    const auto it = ranges.find(range.index);
    EGEMM_EXPECTS(it != ranges.end());
    range.index = it->second.physical;
  };
  for (Instr& instr : instrs) {
    remap(instr.dst);
    for (RegRange& src : instr.srcs) remap(src);
  }
}

}  // namespace

AllocationReport allocate_kernel_registers(Kernel& kernel, int budget) {
  AllocationReport report;

  std::map<std::int32_t, RangeInfo> ranges;
  scan(kernel.prologue, ranges);
  scan(kernel.body, ranges);
  scan(kernel.epilogue, ranges);

  // Classification: anything touched by the main loop (stage 2) or alive
  // across stages is global; single-stage values are overlay candidates.
  std::int32_t global_cursor = 0;
  std::map<std::int32_t, std::int32_t> overlay_cursor;  // per stage
  for (auto& [base, info] : ranges) {
    (void)base;
    report.naive_registers += info.width;
    const bool global =
        info.min_stage != info.max_stage || info.min_stage == 2;
    if (global) {
      info.physical = global_cursor;
      global_cursor += info.width;
      ++report.global_values;
    }
  }
  std::int32_t overlay_peak = 0;
  for (auto& [base, info] : ranges) {
    (void)base;
    if (info.physical >= 0) continue;
    auto& cursor = overlay_cursor[info.min_stage];
    info.physical = global_cursor + cursor;
    cursor += info.width;
    overlay_peak = std::max(overlay_peak, cursor);
    ++report.overlay_values;
  }

  report.physical_registers = global_cursor + overlay_peak;
  if (report.physical_registers > budget) {
    report.errors.push_back(
        "register demand " + std::to_string(report.physical_registers) +
        " exceeds budget " + std::to_string(budget));
    return report;
  }

  rewrite(kernel.prologue, ranges);
  rewrite(kernel.body, ranges);
  rewrite(kernel.epilogue, ranges);
  kernel.virtual_regs = report.physical_registers;
  report.success = true;
  return report;
}

}  // namespace egemm::sass
