#pragma once
// SASS-level kernel IR (§5, artifact).
//
// The paper's artifact ships hand-written SASS assembled with TuringAs;
// this module reproduces that layer as a compiler-ish substrate:
//
//   codegen   -- emits the EGEMM-TC block kernel as per-warp SASS IR
//   schedule  -- the §5.1 register-enhanced reordering pass (Fig. 6)
//   regalloc  -- virtual -> physical register assignment with the §5.2
//                stage-reuse heuristic
//   verifier  -- scoreboard/hazard checking of the control codes
//   assembler -- text round-trip in a TuringAs-like syntax
//   lower     -- aggregation into a tcsim::SimProgram for the cycle model
//
// Control codes follow the Turing scheme in simplified form: every
// instruction carries a stall count plus optional write/read dependency
// barriers (0..5) and a wait mask; variable-latency instructions (memory,
// HMMA) signal completion through barriers, fixed-latency ones through
// stall counts.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace egemm::sass {

enum class Op : std::uint8_t {
  kLdg,   ///< LDG.E.128: global -> registers (4 consecutive)
  kStg,   ///< STG.E.128: registers -> global (epilogue C store)
  kSts,   ///< STS.128: registers -> shared
  kLds,   ///< LDS.32 / LDS.128: shared -> registers
  kHmma,  ///< HMMA.1688.F32
  kFfma,  ///< CUDA-core fused multiply-add
  kIadd,  ///< address arithmetic
  kMov,
  kBar,   ///< BAR.SYNC
  kBra,   ///< branch to label (loop back-edge)
  kExit,
};

const char* op_name(Op op) noexcept;

/// Register operand: a run of `width` consecutive 32-bit registers
/// starting at `index`. Until regalloc runs, indexes are virtual (dense,
/// unbounded); afterwards they are physical R0..R255.
struct RegRange {
  std::int32_t index = -1;
  std::int32_t width = 1;

  bool valid() const noexcept { return index >= 0 && width >= 1; }
  bool overlaps(const RegRange& other) const noexcept {
    if (!valid() || !other.valid()) return false;
    return index < other.index + other.width &&
           other.index < index + width;
  }
  friend bool operator==(const RegRange&, const RegRange&) = default;
};

inline constexpr int kNumDepBarriers = 6;

/// Rounding provenance of the numeric payload an instruction touches, for
/// the precision-dataflow pass (EG5xx): how the binary16 plane data the
/// kernel consumes was produced from the binary32 source matrix.
enum class Rounding : std::uint8_t {
  kNone,          ///< untagged / not plane data
  kRoundNearest,  ///< RN16 split plane (EGEMM-TC round-split, Fig. 4b)
  kTruncate,      ///< RZ16 split plane (Markidis truncate-split, Fig. 4a)
  kHalfDirect,    ///< RN16(x) raw binary16 input (no lo plane at all)
};

const char* rounding_name(Rounding rounding) noexcept;

/// Numeric-provenance tag. Codegen stamps every instruction that moves or
/// consumes split-plane data so the precision-dataflow analysis can derive
/// the kernel's operation precision from the instruction stream instead of
/// assuming it:
///
///  * loads/stores (LDG/STS/LDS) carry the plane payload masks -- bit p of
///    `a_planes`/`b_planes` set means "this payload contains plane p of
///    A/B" (plane 0 = hi, 1 = lo, 2 = mid of a 3-way split) -- plus the
///    rounding mode the split pass used to produce those planes;
///  * HMMA carries the split-product term it computes: A plane `term_a`
///    times B plane `term_b`.
///
/// Untagged instructions (`tagged()` false) are opaque to the precision
/// pass; a kernel with no tags at all simply yields no derived profile.
struct NumericTag {
  std::uint8_t a_planes = 0;  ///< payload mask: A planes present
  std::uint8_t b_planes = 0;  ///< payload mask: B planes present
  Rounding rounding = Rounding::kNone;
  std::int8_t term_a = -1;    ///< HMMA: A-side plane of the computed term
  std::int8_t term_b = -1;    ///< HMMA: B-side plane of the computed term

  bool has_planes() const noexcept { return (a_planes | b_planes) != 0; }
  bool has_term() const noexcept { return term_a >= 0 && term_b >= 0; }
  bool tagged() const noexcept { return has_planes() || has_term(); }
  friend bool operator==(const NumericTag&, const NumericTag&) = default;
};

/// Simplified Turing control code.
struct Ctrl {
  std::int32_t stall = 1;            ///< issue-to-issue stall count
  std::int32_t write_barrier = -1;   ///< barrier signaled when result lands
  std::int32_t read_barrier = -1;    ///< barrier signaled when sources read
  std::uint8_t wait_mask = 0;        ///< barriers that must clear pre-issue

  friend bool operator==(const Ctrl&, const Ctrl&) = default;
};

struct Instr {
  Op op = Op::kMov;
  RegRange dst;                    ///< invalid for stores/BAR/BRA/EXIT
  std::vector<RegRange> srcs;
  Ctrl ctrl;
  std::optional<std::string> target;  ///< BRA label
  std::string comment;
  NumericTag num;  ///< precision-dataflow provenance (EG5xx)

  /// Stage tag for the §5.2 allocator (0 context, 1 load-C, 2 main loop,
  /// 3 store-C).
  std::int32_t stage = 2;
  /// k'-step this instruction belongs to inside the main loop (-1 when not
  /// step-local); the scheduling pass keys its hoisting on this.
  std::int32_t step = -1;
};

/// A kernel: straight-line prologue, a loop body executed `loop_trips`
/// times, and an epilogue. Labels are implicit (the loop head).
struct Kernel {
  std::string name;
  std::vector<Instr> prologue;
  std::vector<Instr> body;
  std::vector<Instr> epilogue;
  std::uint32_t loop_trips = 1;
  std::int32_t virtual_regs = 0;  ///< next unused virtual register index

  std::size_t size() const noexcept {
    return prologue.size() + body.size() + epilogue.size();
  }
  /// Dynamic instruction count with the loop expanded.
  std::uint64_t dynamic_size() const noexcept {
    return prologue.size() +
           static_cast<std::uint64_t>(body.size()) * loop_trips +
           epilogue.size();
  }
};

/// True for ops whose result arrives via a dependency barrier rather than
/// a fixed stall count (variable latency).
bool is_variable_latency(Op op) noexcept;

/// True for ops that read memory-ish sources (no dst register).
bool is_store(Op op) noexcept;

}  // namespace egemm::sass
