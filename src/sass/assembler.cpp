#include "sass/assembler.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace egemm::sass {

namespace {

std::optional<Op> op_from_name(std::string_view name) {
  for (const Op op :
       {Op::kLdg, Op::kStg, Op::kSts, Op::kLds, Op::kHmma, Op::kFfma,
        Op::kIadd, Op::kMov, Op::kBar, Op::kBra, Op::kExit}) {
    if (name == op_name(op)) return op;
  }
  return std::nullopt;
}

std::string reg_text(const RegRange& range) {
  std::string out = "R" + std::to_string(range.index);
  if (range.width != 1) out += "." + std::to_string(range.width);
  return out;
}

std::optional<RegRange> parse_reg(std::string_view token) {
  if (token.empty() || token[0] != 'R') return std::nullopt;
  token.remove_prefix(1);
  RegRange range;
  const std::size_t dot = token.find('.');
  const std::string_view index_part = token.substr(0, dot);
  int index = 0;
  if (std::from_chars(index_part.data(), index_part.data() + index_part.size(),
                      index)
          .ec != std::errc{}) {
    return std::nullopt;
  }
  range.index = index;
  if (dot != std::string_view::npos) {
    const std::string_view width_part = token.substr(dot + 1);
    int width = 0;
    if (std::from_chars(width_part.data(),
                        width_part.data() + width_part.size(), width)
            .ec != std::errc{}) {
      return std::nullopt;
    }
    range.width = width;
  }
  return range;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string emit_instr(const Instr& instr) {
  std::string out = op_name(instr.op);
  bool first = true;
  auto append_operand = [&out, &first](const std::string& text) {
    out += first ? " " : ", ";
    out += text;
    first = false;
  };
  if (instr.dst.valid()) append_operand(reg_text(instr.dst));
  for (const RegRange& src : instr.srcs) append_operand(reg_text(src));
  if (instr.target) append_operand(*instr.target);
  out += " ;";

  if (instr.ctrl.write_barrier >= 0) {
    out += " @W" + std::to_string(instr.ctrl.write_barrier);
  }
  if (instr.ctrl.read_barrier >= 0) {
    out += " @R" + std::to_string(instr.ctrl.read_barrier);
  }
  if (instr.ctrl.wait_mask != 0) {
    char buffer[16];
    std::snprintf(buffer, sizeof buffer, " @wait=0x%x", instr.ctrl.wait_mask);
    out += buffer;
  }
  if (instr.ctrl.stall != 1) {
    out += " @stall=" + std::to_string(instr.ctrl.stall);
  }
  out += " @stage=" + std::to_string(instr.stage);
  if (instr.step >= 0) out += " @step=" + std::to_string(instr.step);
  // Numeric-provenance tags (EG5xx): plane payload masks, the rounding
  // mode that produced the planes, and the HMMA split-product term.
  if (instr.num.a_planes != 0) {
    char buffer[16];
    std::snprintf(buffer, sizeof buffer, " @pa=0x%x", instr.num.a_planes);
    out += buffer;
  }
  if (instr.num.b_planes != 0) {
    char buffer[16];
    std::snprintf(buffer, sizeof buffer, " @pb=0x%x", instr.num.b_planes);
    out += buffer;
  }
  if (instr.num.rounding != Rounding::kNone) {
    out += " @rnd=";
    out += rounding_name(instr.num.rounding);
  }
  if (instr.num.has_term()) {
    out += " @term=" + std::to_string(instr.num.term_a) + "." +
           std::to_string(instr.num.term_b);
  }
  if (!instr.comment.empty()) out += " // " + instr.comment;
  return out;
}

std::optional<Instr> parse_instr(const std::string& line, std::string* error) {
  const std::size_t semi = line.find(';');
  if (semi == std::string::npos) {
    if (error != nullptr) *error = "missing ';' in: " + line;
    return std::nullopt;
  }
  Instr instr;

  // Head: opcode + operands.
  std::istringstream head{std::string(trim(line.substr(0, semi)))};
  std::string op_token;
  head >> op_token;
  const auto op = op_from_name(op_token);
  if (!op) {
    if (error != nullptr) *error = "unknown opcode: " + op_token;
    return std::nullopt;
  }
  instr.op = *op;

  std::vector<std::string> operands;
  std::string rest;
  std::getline(head, rest);
  std::size_t pos = 0;
  while (pos < rest.size()) {
    std::size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string_view token = trim(
        std::string_view(rest).substr(pos, comma - pos));
    if (!token.empty()) operands.emplace_back(token);
    pos = comma + 1;
  }
  std::size_t first_src = 0;
  const bool has_dst = !is_store(instr.op) && instr.op != Op::kBar &&
                       instr.op != Op::kBra && instr.op != Op::kExit &&
                       !operands.empty();
  if (has_dst) {
    const auto dst = parse_reg(operands[0]);
    if (!dst) {
      if (error != nullptr) *error = "bad destination: " + operands[0];
      return std::nullopt;
    }
    instr.dst = *dst;
    first_src = 1;
  }
  for (std::size_t i = first_src; i < operands.size(); ++i) {
    if (const auto src = parse_reg(operands[i])) {
      instr.srcs.push_back(*src);
    } else if (instr.op == Op::kBra) {
      instr.target = operands[i];
    } else {
      if (error != nullptr) *error = "bad operand: " + operands[i];
      return std::nullopt;
    }
  }

  // Tail: annotations and comment.
  std::string tail = line.substr(semi + 1);
  const std::size_t slashes = tail.find("//");
  if (slashes != std::string::npos) {
    instr.comment = std::string(trim(tail.substr(slashes + 2)));
    tail = tail.substr(0, slashes);
  }
  std::istringstream annotations{tail};
  std::string token;
  while (annotations >> token) {
    if (token.rfind("@W", 0) == 0) {
      instr.ctrl.write_barrier = std::stoi(token.substr(2));
    } else if (token.rfind("@R", 0) == 0) {
      instr.ctrl.read_barrier = std::stoi(token.substr(2));
    } else if (token.rfind("@wait=", 0) == 0) {
      instr.ctrl.wait_mask = static_cast<std::uint8_t>(
          std::stoul(token.substr(6), nullptr, 16));
    } else if (token.rfind("@stall=", 0) == 0) {
      instr.ctrl.stall = std::stoi(token.substr(7));
    } else if (token.rfind("@stage=", 0) == 0) {
      instr.stage = std::stoi(token.substr(7));
    } else if (token.rfind("@step=", 0) == 0) {
      instr.step = std::stoi(token.substr(6));
    } else if (token.rfind("@pa=", 0) == 0) {
      instr.num.a_planes = static_cast<std::uint8_t>(
          std::stoul(token.substr(4), nullptr, 16));
    } else if (token.rfind("@pb=", 0) == 0) {
      instr.num.b_planes = static_cast<std::uint8_t>(
          std::stoul(token.substr(4), nullptr, 16));
    } else if (token.rfind("@rnd=", 0) == 0) {
      const std::string name = token.substr(5);
      bool found = false;
      for (const Rounding r :
           {Rounding::kRoundNearest, Rounding::kTruncate,
            Rounding::kHalfDirect}) {
        if (name == rounding_name(r)) {
          instr.num.rounding = r;
          found = true;
        }
      }
      if (!found) {
        if (error != nullptr) *error = "unknown rounding: " + token;
        return std::nullopt;
      }
    } else if (token.rfind("@term=", 0) == 0) {
      const std::string term = token.substr(6);
      const std::size_t dot = term.find('.');
      if (dot == std::string::npos) {
        if (error != nullptr) *error = "bad term annotation: " + token;
        return std::nullopt;
      }
      instr.num.term_a =
          static_cast<std::int8_t>(std::stoi(term.substr(0, dot)));
      instr.num.term_b =
          static_cast<std::int8_t>(std::stoi(term.substr(dot + 1)));
    } else {
      if (error != nullptr) *error = "unknown annotation: " + token;
      return std::nullopt;
    }
  }
  return instr;
}

std::string emit_text(const Kernel& kernel) {
  std::string out = "// kernel: " + kernel.name + "\n";
  out += "// vregs: " + std::to_string(kernel.virtual_regs) + "\n";
  auto emit_section = [&out](const char* header,
                             const std::vector<Instr>& instrs) {
    out += header;
    out += "\n";
    for (const Instr& instr : instrs) {
      out += "  " + emit_instr(instr) + "\n";
    }
  };
  emit_section(".prologue:", kernel.prologue);
  out += ".body(trips=" + std::to_string(kernel.loop_trips) + "):\n";
  for (const Instr& instr : kernel.body) {
    out += "  " + emit_instr(instr) + "\n";
  }
  emit_section(".epilogue:", kernel.epilogue);
  return out;
}

ParseResult parse_text(const std::string& text) {
  ParseResult result;
  std::vector<Instr>* section = nullptr;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.rfind("// kernel:", 0) == 0) {
      result.kernel.name = std::string(trim(trimmed.substr(10)));
      continue;
    }
    if (trimmed.rfind("// vregs:", 0) == 0) {
      result.kernel.virtual_regs = std::stoi(std::string(trimmed.substr(9)));
      continue;
    }
    if (trimmed.rfind("//", 0) == 0) continue;
    if (trimmed == ".prologue:") {
      section = &result.kernel.prologue;
      continue;
    }
    if (trimmed.rfind(".body(trips=", 0) == 0) {
      result.kernel.loop_trips = static_cast<std::uint32_t>(
          std::stoul(std::string(trimmed.substr(12))));
      section = &result.kernel.body;
      continue;
    }
    if (trimmed == ".epilogue:") {
      section = &result.kernel.epilogue;
      continue;
    }
    if (section == nullptr) {
      result.error = "instruction outside any section: " + line;
      return result;
    }
    std::string error;
    const auto instr = parse_instr(std::string(trimmed), &error);
    if (!instr) {
      result.error = error;
      return result;
    }
    section->push_back(*instr);
  }
  result.success = true;
  return result;
}

}  // namespace egemm::sass
