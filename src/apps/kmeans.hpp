#pragma once
// GEMM-based kMeans (hipeac gpus-kmeans [2]; §7.5, Fig. 12a).
//
// Each Lloyd iteration forms the point-to-centroid distance matrix from
// one GEMM (points x centroids^T) -- ~67% of the open-source
// implementation's time (§1) -- then assigns points to the nearest
// centroid and recomputes means. The GEMM backend is pluggable.

#include <cstdint>
#include <vector>

#include "gemm/gemm_api.hpp"
#include "gemm/matrix.hpp"

namespace egemm::apps {

struct KMeansOptions {
  int clusters = 16;
  int max_iterations = 25;
  double tolerance = 1e-6;  ///< stop when inertia improves less than this
  std::uint64_t seed = 42;  ///< k-means++-style seeding stream
  gemm::Backend backend = gemm::Backend::kEgemmTC;
  /// Accuracy contract on the distance GEMM: when > 0 the planner ignores
  /// `backend` and selects the cheapest emulation scheme whose a-priori
  /// element-wise bound (with the points' scale context; centroids are
  /// convex combinations of points, so share their scale) meets this
  /// target. Throws std::invalid_argument when no ladder rung qualifies.
  double precision_target = 0.0;
  /// Plan/workspace context for the per-iteration GEMM (gemm/plan.hpp);
  /// the shared default_context() when null. The Lloyd loop plans once and
  /// executes into reused buffers, so iterations stay allocation-free.
  gemm::GemmContext* context = nullptr;
  /// When > 0, each iteration's distance GEMM is row-partitioned into
  /// chunks of this many points and executed as ONE grouped stream
  /// (gemm::GemmContext::execute_grouped, DESIGN.md §18). A row partition
  /// of A partitions D by rows with an unchanged per-row operation
  /// sequence, so the result is bit-identical to the single GEMM. 0 = one
  /// unpartitioned GEMM.
  std::size_t group_rows = 0;
};

struct KMeansResult {
  gemm::Matrix centroids;       ///< clusters x dim
  std::vector<int> assignment;  ///< per point
  int iterations = 0;
  double inertia = 0.0;  ///< sum of squared distances to assigned centroid
  bool converged = false;
  /// Ladder rung the contract resolved to (static name from
  /// core::scheme_name); null when no precision_target was set.
  const char* scheme = nullptr;
};

/// Lloyd iterations on `points` (n x dim).
KMeansResult kmeans(const gemm::Matrix& points, const KMeansOptions& opts);

/// Inertia of an assignment (test oracle, binary64).
double kmeans_inertia(const gemm::Matrix& points, const gemm::Matrix& centroids,
                      const std::vector<int>& assignment);

}  // namespace egemm::apps
