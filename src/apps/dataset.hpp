#pragma once
// Synthetic datasets for the GEMM-based scientific-computing applications
// (§7.5). The paper's open-source baselines run on generic point clouds;
// we generate reproducible uniform clouds and Gaussian mixtures (the
// latter give kMeans a meaningful clustering to recover, which the tests
// verify).

#include <cstdint>
#include <vector>

#include "gemm/matrix.hpp"

namespace egemm::apps {

struct PointCloud {
  gemm::Matrix points;           ///< n x dim, row per point
  std::vector<int> true_labels;  ///< generating component (empty if none)
  int components = 0;
};

/// Uniform points in [lo, hi)^dim.
PointCloud uniform_cloud(std::size_t n, std::size_t dim, float lo, float hi,
                         std::uint64_t seed);

/// Gaussian mixture: `components` centers uniform in [-1,1]^dim, isotropic
/// noise with the given standard deviation around each.
PointCloud gaussian_mixture(std::size_t n, std::size_t dim, int components,
                            double stddev, std::uint64_t seed);

}  // namespace egemm::apps
