#include "apps/app_timing.hpp"

#include "util/assert.hpp"

namespace egemm::apps {

namespace {

double dbl(std::uint64_t v) { return static_cast<double>(v); }

/// A memory-bound CUDA-core pass moving `bytes` plus its kernel launch.
double mem_pass_seconds(double bytes, const tcsim::GpuSpec& spec,
                        int launches = 1) {
  return bytes / (spec.dram_bandwidth_gbps * 1e9) +
         launches * spec.kernel_launch_us * 1e-6;
}

/// Backends that must run the O(N^2) data split before their GEMM.
bool needs_split(gemm::Backend backend) {
  switch (backend) {
    case gemm::Backend::kEgemmTC:
    case gemm::Backend::kCublasTcEmulation:
    case gemm::Backend::kMarkidis:
    case gemm::Backend::kDekker:
      return true;
    default:
      return false;
  }
}

}  // namespace

AppTiming knn_timing(const KnnWorkload& workload, gemm::Backend backend,
                     const tcsim::GpuSpec& spec) {
  EGEMM_EXPECTS(workload.references > 0 && workload.queries > 0 &&
                workload.dim > 0);
  const double m = dbl(workload.queries);
  const double n = dbl(workload.references);
  const double d = dbl(workload.dim);

  AppTiming timing;
  // One large cross-term GEMM: (queries x dim) x (dim x references).
  const gemm::KernelTiming gemm_time =
      gemm::time_gemm(backend, workload.queries, workload.references,
                      workload.dim, spec);
  timing.gemm_seconds = gemm_time.seconds;

  // Row norms of both matrices (one streaming pass each).
  const double norms = mem_pass_seconds(4.0 * (m * d + n * d), spec, 1);
  // Distance assembly + k-selection over the m x n matrix: the distance
  // entries are written once and re-read by the per-query partial sort;
  // 2.5 effective passes matches the Garcia-style insertion selection.
  const double selection = mem_pass_seconds(2.5 * 4.0 * m * n, spec, 2);
  timing.other_seconds = norms + selection;

  timing.total_seconds = timing.gemm_seconds + timing.other_seconds;
  timing.gemm_fraction = timing.gemm_seconds / timing.total_seconds;
  return timing;
}

AppTiming kmeans_timing(const KMeansWorkload& workload, gemm::Backend backend,
                        const tcsim::GpuSpec& spec) {
  EGEMM_EXPECTS(workload.points > 0 && workload.dim > 0 &&
                workload.clusters > 0 && workload.iterations > 0);
  const double n = dbl(workload.points);
  const double d = dbl(workload.dim);
  const double c = static_cast<double>(workload.clusters);
  const double iters = static_cast<double>(workload.iterations);

  AppTiming timing;
  // Assignment GEMM per iteration: (points x dim) x (dim x clusters).
  gemm::KernelTiming gemm_time = gemm::time_gemm(
      backend, workload.points,
      static_cast<std::uint64_t>(workload.clusters), workload.dim, spec);
  double gemm_per_iter = gemm_time.seconds;
  if (needs_split(backend)) {
    // The points matrix never changes across Lloyd iterations, so a tuned
    // implementation splits it once; only the (tiny) centroid matrix is
    // re-split. Remove the per-iteration point-split cost and charge it
    // once up front.
    const double point_split_bytes = 8.0 * n * d;
    const double point_split =
        point_split_bytes / (spec.dram_bandwidth_gbps * 1e9);
    gemm_per_iter -= point_split;
    timing.gemm_seconds = point_split;
  }
  timing.gemm_seconds += gemm_per_iter * iters;

  // Non-GEMM per iteration: centroid norms, argmin over the n x c cross
  // matrix, and the mean update streaming the points once.
  const double argmin = mem_pass_seconds(4.0 * n * c, spec, 1);
  const double update = mem_pass_seconds(4.0 * (n * d + n + c * d), spec, 1);
  const double norms = mem_pass_seconds(4.0 * c * d, spec, 1);
  timing.other_seconds = (argmin + update + norms) * iters;

  timing.total_seconds = timing.gemm_seconds + timing.other_seconds;
  timing.gemm_fraction = timing.gemm_seconds / timing.total_seconds;
  return timing;
}

}  // namespace egemm::apps
