#include "apps/pca.hpp"

#include <algorithm>
#include <cmath>

#include "gemm/plan.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace egemm::apps {

namespace {

/// C . v for a symmetric dim x dim matrix in binary64 (the small
/// per-iteration work; the GEMM-heavy part is the covariance itself).
std::vector<double> matvec(const gemm::Matrix& c,
                           const std::vector<double>& v) {
  std::vector<double> out(c.rows(), 0.0);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    double acc = 0.0;
    const float* row = c.row(i);
    for (std::size_t j = 0; j < c.cols(); ++j) {
      acc += static_cast<double>(row[j]) * v[j];
    }
    out[i] = acc;
  }
  return out;
}

double norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (const double x : v) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace

PcaResult pca_power(const gemm::Matrix& points, const PcaOptions& opts) {
  EGEMM_EXPECTS(opts.components >= 1);
  EGEMM_EXPECTS(points.rows() >= 2);
  EGEMM_EXPECTS(static_cast<std::size_t>(opts.components) <= points.cols());
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();

  PcaResult result;

  // Center the data (one streaming pass on CUDA cores).
  result.mean.assign(dim, 0.0f);
  {
    std::vector<double> sums(dim, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = points.row(i);
      for (std::size_t d = 0; d < dim; ++d) {
        sums[d] += static_cast<double>(row[d]);
      }
    }
    for (std::size_t d = 0; d < dim; ++d) {
      result.mean[d] =
          static_cast<float>(sums[d] / static_cast<double>(n));
    }
  }
  gemm::Matrix centered(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const float* src = points.row(i);
    float* dst = centered.row(i);
    for (std::size_t d = 0; d < dim; ++d) dst[d] = src[d] - result.mean[d];
  }

  // Covariance via the backend: C = (1/(n-1)) X_c^T x X_c -- the O(n dim^2)
  // GEMM this application exists for.
  gemm::GemmContext& ctx =
      opts.context != nullptr ? *opts.context : gemm::default_context();
  gemm::GemmExParams params;
  params.trans_a = gemm::Transpose::kTranspose;
  params.alpha = 1.0f / static_cast<float>(n - 1);
  // Explicit scale context so the contract resolves identically for the
  // single call and for every chunk of the grouped path below.
  core::AccuracyContract contract;
  contract.max_abs_error = opts.precision_target;
  contract.a_scale = gemm::max_abs(centered);
  contract.b_scale = contract.a_scale;

  // Grouped path (DESIGN.md §18): partition the rows of X_c^T -- each
  // chunk produces a band of covariance rows through the same operation
  // sequence (alpha epilogue included), so the assembled result is
  // bit-identical to the single gemm_ex call.
  const std::size_t group =
      opts.group_rows == 0 ? dim : std::min(opts.group_rows, dim);
  const std::size_t chunk_count = (dim + group - 1) / group;
  gemm::Matrix covariance;
  if (chunk_count > 1) {
    const gemm::Matrix xt = gemm::transpose(centered);
    std::vector<gemm::Matrix> xt_chunks(chunk_count);
    std::vector<gemm::Matrix> cov_chunks(chunk_count);
    std::vector<gemm::GroupedGemmItem> items(chunk_count);
    for (std::size_t ci = 0; ci < chunk_count; ++ci) {
      const std::size_t start = ci * group;
      const std::size_t rows = std::min(group, dim - start);
      xt_chunks[ci].resize(rows, n);
      std::copy(xt.row(start), xt.row(start) + rows * n,
                xt_chunks[ci].data().begin());
      items[ci].a = &xt_chunks[ci];
      items[ci].b = &centered;
      items[ci].d = &cov_chunks[ci];
      items[ci].params = params;
      items[ci].params.trans_a = gemm::Transpose::kNone;  // pre-transposed
    }
    if (opts.precision_target > 0.0) {
      const core::ContractResolution resolution =
          gemm::gemm_ex_contract_resolution(centered, centered, nullptr,
                                            params, contract);
      // The grouped overload re-resolves per item (same explicit scales,
      // same k = n, same alpha -> same rung) and throws the detailed
      // invalid_argument itself when infeasible.
      gemm::gemm_grouped(ctx, items, contract);
      result.scheme = core::scheme_name(resolution.scheme);
    } else {
      gemm::gemm_grouped(ctx, opts.backend, items);
    }
    covariance.resize(dim, dim);
    for (std::size_t ci = 0; ci < chunk_count; ++ci) {
      std::copy(cov_chunks[ci].data().begin(), cov_chunks[ci].data().end(),
                covariance.row(ci * group));
    }
  } else if (opts.precision_target > 0.0) {
    const core::ContractResolution resolution =
        gemm::gemm_ex_contract_resolution(centered, centered, nullptr, params,
                                          contract);
    // The contract overload re-resolves and throws the detailed
    // invalid_argument itself when infeasible.
    covariance =
        gemm::gemm_ex(ctx, centered, centered, nullptr, params, contract);
    result.scheme = core::scheme_name(resolution.scheme);
  } else {
    covariance =
        gemm::gemm_ex(ctx, opts.backend, centered, centered, nullptr, params);
  }

  // Power iteration with deflation on the dim x dim covariance.
  util::Xoshiro256 rng(opts.seed);
  result.components = gemm::Matrix(static_cast<std::size_t>(opts.components),
                                   dim);
  for (int component = 0; component < opts.components; ++component) {
    std::vector<double> v(dim);
    for (double& x : v) x = rng.uniform_double(-1.0, 1.0);
    double lambda = 0.0;
    for (int iter = 0; iter < opts.power_iterations; ++iter) {
      std::vector<double> w = matvec(covariance, v);
      const double w_norm = norm(w);
      if (w_norm == 0.0) break;
      for (double& x : w) x /= w_norm;
      const double new_lambda = w_norm;
      v = std::move(w);
      if (std::fabs(new_lambda - lambda) <=
          opts.tolerance * std::max(1.0, new_lambda)) {
        lambda = new_lambda;
        break;
      }
      lambda = new_lambda;
    }
    result.explained_variance.push_back(lambda);
    for (std::size_t d = 0; d < dim; ++d) {
      result.components.at(static_cast<std::size_t>(component), d) =
          static_cast<float>(v[d]);
    }
    // Deflate: C -= lambda v v^T.
    for (std::size_t i = 0; i < dim; ++i) {
      float* row = covariance.row(i);
      for (std::size_t j = 0; j < dim; ++j) {
        row[j] -= static_cast<float>(lambda * v[i] * v[j]);
      }
    }
  }
  return result;
}

AppTiming pca_timing(const PcaWorkload& workload, gemm::Backend backend,
                     const tcsim::GpuSpec& spec) {
  EGEMM_EXPECTS(workload.points > 1 && workload.dim > 0);
  const auto n = static_cast<double>(workload.points);
  const auto d = static_cast<double>(workload.dim);

  AppTiming timing;
  // The covariance GEMM: (dim x n) x (n x dim).
  timing.gemm_seconds =
      gemm::time_gemm(backend, workload.dim, workload.dim, workload.points,
                      spec)
          .seconds;

  // Non-GEMM phases: mean + centering passes over X (read + read/write),
  // then power iterations as memory-bound dim^2 sweeps with deflation.
  const double bw = spec.dram_bandwidth_gbps * 1e9;
  const double centering = (4.0 * n * d + 8.0 * n * d) / bw +
                           2 * spec.kernel_launch_us * 1e-6;
  const double per_iter = 4.0 * d * d / bw + spec.kernel_launch_us * 1e-6;
  const double deflation = 8.0 * d * d / bw + spec.kernel_launch_us * 1e-6;
  timing.other_seconds =
      centering +
      static_cast<double>(workload.components) *
          (static_cast<double>(workload.power_iterations) * per_iter +
           deflation);

  timing.total_seconds = timing.gemm_seconds + timing.other_seconds;
  timing.gemm_fraction = timing.gemm_seconds / timing.total_seconds;
  return timing;
}

}  // namespace egemm::apps
