#pragma once
// GEMM-based principal component analysis (a third GEMM-dominated
// scientific workload beyond the paper's kNN/kMeans pair; §1's motivation
// covers "mathematical computations" generally).
//
// The covariance matrix C = X_c^T X_c / (n-1) is one large GEMM -- the
// dominant cost for n >> dim -- followed by power iteration with
// deflation on the (small) covariance. Precision matters twice: the
// covariance entries accumulate n products, and eigenvector convergence is
// sensitive to systematic error, which is why a half-precision backend
// visibly degrades the recovered subspace (tests).

#include <cstdint>
#include <vector>

#include "apps/app_timing.hpp"
#include "gemm/gemm_api.hpp"
#include "gemm/matrix.hpp"
#include "tcsim/gpu_spec.hpp"

namespace egemm::apps {

struct PcaOptions {
  int components = 4;
  int power_iterations = 50;
  double tolerance = 1e-7;  ///< per-component convergence on the Rayleigh quotient
  std::uint64_t seed = 7;
  gemm::Backend backend = gemm::Backend::kEgemmTC;
  /// Accuracy contract on each covariance entry: when > 0 the planner
  /// ignores `backend` and routes the covariance GEMM through the
  /// contract gemm_ex overload, which selects the cheapest emulation
  /// scheme whose a-priori bound meets this target (the 1/(n-1) alpha
  /// epilogue rounding included). Throws std::invalid_argument when no
  /// ladder rung qualifies.
  double precision_target = 0.0;
  /// Plan/workspace context for the covariance GEMM (gemm/plan.hpp); the
  /// shared default_context() when null.
  gemm::GemmContext* context = nullptr;
  /// When > 0, the covariance GEMM is row-partitioned (over the rows of
  /// X_c^T, i.e. the covariance rows) into chunks of this size and
  /// executed as ONE grouped stream (gemm_grouped, DESIGN.md §18) --
  /// bit-identical to the single gemm_ex call, including the 1/(n-1)
  /// alpha epilogue. 0 = one unpartitioned GEMM.
  std::size_t group_rows = 0;
};

struct PcaResult {
  gemm::Matrix components;               ///< components x dim, orthonormal rows
  std::vector<double> explained_variance;  ///< eigenvalues, descending
  std::vector<float> mean;               ///< the removed column means
  /// Ladder rung the contract resolved to (static name from
  /// core::scheme_name); null when no precision_target was set.
  const char* scheme = nullptr;
};

/// Computes the leading principal components of `points` (n x dim).
PcaResult pca_power(const gemm::Matrix& points, const PcaOptions& opts);

/// Modeled GPU time for the PCA pipeline (covariance GEMM through the
/// backend's kernel model + memory-bound centering/iteration passes).
struct PcaWorkload {
  std::uint64_t points = 16384;
  std::uint64_t dim = 1024;
  int components = 8;
  int power_iterations = 30;
};
AppTiming pca_timing(const PcaWorkload& workload, gemm::Backend backend,
                     const tcsim::GpuSpec& spec);

}  // namespace egemm::apps
