#pragma once
// Application-level timing composition for Fig. 12.
//
// Both applications decompose into a GEMM phase (timed through the
// backend's kernel model) and non-GEMM phases (norms, k-selection, argmin,
// centroid update) modeled as memory-bound CUDA-core passes. With the
// cuBLAS-CUDA-FP32 backend at the paper's scales the GEMM fraction lands
// near the §1 figures (~85% for kNN, ~67% for kMeans), which is what makes
// the end-to-end speedups smaller than the raw GEMM speedups.

#include <cstdint>

#include "gemm/gemm_api.hpp"
#include "tcsim/gpu_spec.hpp"

namespace egemm::apps {

struct AppTiming {
  double total_seconds = 0.0;
  double gemm_seconds = 0.0;
  double other_seconds = 0.0;
  double gemm_fraction = 0.0;
};

struct KnnWorkload {
  std::uint64_t references = 8192;
  std::uint64_t queries = 8192;
  std::uint64_t dim = 256;
  int k = 20;
};

struct KMeansWorkload {
  std::uint64_t points = 8192;
  std::uint64_t dim = 128;
  int clusters = 64;
  int iterations = 20;
};

AppTiming knn_timing(const KnnWorkload& workload, gemm::Backend backend,
                     const tcsim::GpuSpec& spec);

AppTiming kmeans_timing(const KMeansWorkload& workload, gemm::Backend backend,
                        const tcsim::GpuSpec& spec);

}  // namespace egemm::apps
