#include "apps/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>

#include "gemm/plan.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace egemm::apps {

namespace {

/// k-means++ style seeding: first centroid uniform, the rest sampled with
/// probability proportional to the squared distance to the nearest chosen
/// centroid (computed directly; seeding is not the GEMM-heavy phase).
gemm::Matrix seed_centroids(const gemm::Matrix& points, int clusters,
                            std::uint64_t seed) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  util::Xoshiro256 rng(seed);
  gemm::Matrix centroids(static_cast<std::size_t>(clusters), dim);

  std::vector<double> best_dist(n, std::numeric_limits<double>::max());
  std::size_t chosen = rng.below(n);
  for (int c = 0; c < clusters; ++c) {
    for (std::size_t d = 0; d < dim; ++d) {
      centroids.at(static_cast<std::size_t>(c), d) = points.at(chosen, d);
    }
    if (c + 1 == clusters) break;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff =
            static_cast<double>(points.at(i, d)) -
            static_cast<double>(centroids.at(static_cast<std::size_t>(c), d));
        acc += diff * diff;
      }
      best_dist[i] = std::min(best_dist[i], acc);
      total += best_dist[i];
    }
    // Sample proportional to best_dist.
    double target = rng.uniform_double(0.0, total);
    chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= best_dist[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
  }
  return centroids;
}

std::vector<float> row_norms(const gemm::Matrix& m) {
  std::vector<float> norms(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float acc = 0.0f;
    const float* row = m.row(i);
    for (std::size_t d = 0; d < m.cols(); ++d) {
      acc = std::fmaf(row[d], row[d], acc);
    }
    norms[i] = acc;
  }
  return norms;
}

}  // namespace

KMeansResult kmeans(const gemm::Matrix& points, const KMeansOptions& opts) {
  EGEMM_EXPECTS(opts.clusters >= 1);
  EGEMM_EXPECTS(points.rows() >= static_cast<std::size_t>(opts.clusters));
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  const auto clusters = static_cast<std::size_t>(opts.clusters);

  KMeansResult result;
  result.centroids = seed_centroids(points, opts.clusters, opts.seed);
  result.assignment.assign(n, 0);

  const std::vector<float> pn = row_norms(points);
  double prev_inertia = std::numeric_limits<double>::max();

  // Every iteration runs the same (n x dim) x (dim x clusters) GEMM: plan
  // it once, then execute into reused buffers -- after the first pass the
  // loop performs no heap allocation for the GEMM.
  gemm::GemmContext& ctx =
      opts.context != nullptr ? *opts.context : gemm::default_context();

  // Centroids are convex combinations of points, so both GEMM operands
  // share the points' scale context for the a-priori bound. Shared by
  // every chunk of the grouped path, so all chunks resolve to one scheme.
  core::AccuracyContract contract;
  contract.max_abs_error = opts.precision_target;
  contract.a_scale = gemm::max_abs(points);
  contract.b_scale = contract.a_scale;
  const auto plan_shape =
      [&](std::size_t rows) -> std::shared_ptr<const gemm::GemmPlan> {
    if (opts.precision_target <= 0.0) {
      return ctx.plan(opts.backend, rows, clusters, dim);
    }
    const gemm::GemmContext::ContractPlan cp =
        ctx.plan_contract(rows, clusters, dim, contract);
    if (!cp.resolution.feasible) {
      char message[192];
      std::snprintf(message, sizeof(message),
                    "kmeans: no emulation scheme meets the accuracy contract: "
                    "target %.6g, tightest rung (%s) only proves %.6g",
                    opts.precision_target,
                    core::scheme_name(cp.resolution.tightest),
                    cp.resolution.tightest_worst_abs);
      throw std::invalid_argument(message);
    }
    result.scheme = core::scheme_name(cp.resolution.scheme);
    return cp.plan;
  };

  // Grouped path (DESIGN.md §18): the distance GEMM row-partitions into
  // point chunks that execute as one flattened stream. The chunks, their
  // plans, and the work list are built once; iterations reuse them.
  const std::size_t group =
      opts.group_rows == 0 ? n : std::min(opts.group_rows, n);
  const std::size_t chunk_count = (n + group - 1) / group;
  const bool grouped = chunk_count > 1;
  std::vector<std::shared_ptr<const gemm::GemmPlan>> plans(chunk_count);
  std::vector<gemm::Matrix> point_chunks(grouped ? chunk_count : 0);
  std::vector<gemm::Matrix> cross_chunks(grouped ? chunk_count : 0);
  for (std::size_t ci = 0; ci < chunk_count; ++ci) {
    const std::size_t start = ci * group;
    const std::size_t rows = std::min(group, n - start);
    plans[ci] = plan_shape(rows);
    if (grouped) {
      point_chunks[ci].resize(rows, dim);
      std::copy(points.row(start), points.row(start) + rows * dim,
                point_chunks[ci].data().begin());
    }
  }
  gemm::Matrix ct;
  gemm::Matrix cross;
  std::vector<gemm::GroupedGemm> work(grouped ? chunk_count : 0);
  for (std::size_t ci = 0; ci < work.size(); ++ci) {
    work[ci] = gemm::GroupedGemm{plans[ci], &point_chunks[ci], &ct, nullptr,
                                 &cross_chunks[ci]};
  }

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Assignment step: distance matrix through the GEMM backend.
    gemm::transpose_into(result.centroids, ct);
    if (grouped) {
      ctx.execute_grouped(work);
    } else {
      plans[0]->execute(ctx, points, ct, nullptr, cross);
    }
    const std::vector<float> cn = row_norms(result.centroids);

    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float* cross_row =
          grouped ? cross_chunks[i / group].row(i % group) : cross.row(i);
      int best = 0;
      float best_dist = std::numeric_limits<float>::max();
      for (std::size_t c = 0; c < clusters; ++c) {
        const float dist = pn[i] + cn[c] - 2.0f * cross_row[c];
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<int>(c);
        }
      }
      result.assignment[i] = best;
      inertia += std::max(0.0, static_cast<double>(best_dist));
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update step: new means (empty clusters keep their centroid).
    gemm::Matrix sums(clusters, dim);
    std::vector<std::size_t> counts(clusters, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      const float* row = points.row(i);
      float* sum = sums.row(c);
      for (std::size_t d = 0; d < dim; ++d) sum[d] += row[d];
    }
    for (std::size_t c = 0; c < clusters; ++c) {
      if (counts[c] == 0) continue;
      const auto inv = 1.0f / static_cast<float>(counts[c]);
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids.at(c, d) = sums.at(c, d) * inv;
      }
    }

    if (prev_inertia - inertia <= opts.tolerance * std::max(1.0, inertia)) {
      result.converged = true;
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

double kmeans_inertia(const gemm::Matrix& points, const gemm::Matrix& centroids,
                      const std::vector<int>& assignment) {
  EGEMM_EXPECTS(assignment.size() == points.rows());
  double total = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const auto c = static_cast<std::size_t>(assignment[i]);
    EGEMM_EXPECTS(c < centroids.rows());
    for (std::size_t d = 0; d < points.cols(); ++d) {
      const double diff = static_cast<double>(points.at(i, d)) -
                          static_cast<double>(centroids.at(c, d));
      total += diff * diff;
    }
  }
  return total;
}

}  // namespace egemm::apps
