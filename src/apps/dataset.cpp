#include "apps/dataset.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace egemm::apps {

PointCloud uniform_cloud(std::size_t n, std::size_t dim, float lo, float hi,
                         std::uint64_t seed) {
  PointCloud cloud;
  cloud.points = gemm::random_matrix(n, dim, lo, hi, seed);
  return cloud;
}

PointCloud gaussian_mixture(std::size_t n, std::size_t dim, int components,
                            double stddev, std::uint64_t seed) {
  EGEMM_EXPECTS(components > 0);
  PointCloud cloud;
  cloud.points = gemm::Matrix(n, dim);
  cloud.true_labels.resize(n);
  cloud.components = components;

  util::NormalSampler normal(seed);
  gemm::Matrix centers(static_cast<std::size_t>(components), dim);
  for (float& value : centers.data()) {
    value = normal.rng().uniform(-1.0f, 1.0f);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int label =
        static_cast<int>(normal.rng().below(static_cast<std::uint64_t>(components)));
    cloud.true_labels[i] = label;
    for (std::size_t d = 0; d < dim; ++d) {
      cloud.points.at(i, d) =
          centers.at(static_cast<std::size_t>(label), d) +
          static_cast<float>(stddev * normal.next());
    }
  }
  return cloud;
}

}  // namespace egemm::apps
