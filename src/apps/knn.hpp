#pragma once
// GEMM-based k-nearest-neighbor search (Garcia [9]; §7.5, Fig. 12b).
//
// The distance matrix is assembled from a single large GEMM,
//   dist^2(q, x) = ||q||^2 + ||x||^2 - 2 q.x,
// which is where ~85% of the open-source implementation's time goes (§1);
// the GEMM backend is pluggable so EGEMM-TC drops in for cublasSgemm.

#include <cstdint>
#include <vector>

#include "gemm/gemm_api.hpp"
#include "gemm/matrix.hpp"

namespace egemm::apps {

struct KnnResult {
  /// indices.at(i, j): index (into the reference set) of query i's j-th
  /// nearest neighbor, nearest first.
  gemm::BasicMatrix<std::int32_t> indices;
  /// Squared distances, same layout.
  gemm::Matrix distances;
  /// Ladder rung the contract resolved to (static name from
  /// core::scheme_name); null when no precision_target was set.
  const char* scheme = nullptr;
};

struct KnnOptions {
  int k = 8;
  gemm::Backend backend = gemm::Backend::kEgemmTC;
  /// Accuracy contract on the cross-term GEMM: when > 0 the planner
  /// ignores `backend` and selects the cheapest emulation scheme whose
  /// a-priori bound (queries/references scale context) meets this target.
  /// Throws std::invalid_argument when no ladder rung qualifies.
  double precision_target = 0.0;
  /// Plan/workspace context for the distance GEMM (gemm/plan.hpp); the
  /// shared default_context() when null. Batched searches over same-shape
  /// query sets reuse the cached plan and its workspaces.
  gemm::GemmContext* context = nullptr;
  /// When > 0, the cross-term GEMM is row-partitioned into query chunks of
  /// this size and executed as ONE grouped stream (gemm_grouped, DESIGN.md
  /// §18) -- bit-identical to the single GEMM (a row partition of Q
  /// partitions the cross matrix by rows). 0 = one unpartitioned GEMM.
  std::size_t group_rows = 0;
};

/// queries: m x d, references: n x d. Requires k <= n.
KnnResult knn_search(const gemm::Matrix& queries,
                     const gemm::Matrix& references, const KnnOptions& opts);

/// Direct double-precision brute force (test oracle).
KnnResult knn_bruteforce(const gemm::Matrix& queries,
                         const gemm::Matrix& references, int k);

/// Fraction of (query, rank) pairs whose neighbor index matches between
/// two results; 1.0 means identical neighbor lists.
double knn_agreement(const KnnResult& a, const KnnResult& b);

}  // namespace egemm::apps
