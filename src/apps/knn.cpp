#include "apps/knn.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gemm/plan.hpp"
#include "util/assert.hpp"

namespace egemm::apps {

namespace {

/// Squared L2 norms of each row.
std::vector<float> row_norms(const gemm::Matrix& m) {
  std::vector<float> norms(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float acc = 0.0f;
    const float* row = m.row(i);
    for (std::size_t d = 0; d < m.cols(); ++d) {
      acc = std::fmaf(row[d], row[d], acc);
    }
    norms[i] = acc;
  }
  return norms;
}

/// Partial selection of the k smallest entries of `row`, ties broken by
/// index (deterministic across backends).
void select_k(const float* row, std::size_t n, int k,
              std::int32_t* out_idx, float* out_dist) {
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const auto kth = order.begin() + k;
  std::partial_sort(order.begin(), kth, order.end(),
                    [row](std::int32_t a, std::int32_t b) {
                      const float da = row[a], db = row[b];
                      if (da != db) return da < db;
                      return a < b;
                    });
  for (int j = 0; j < k; ++j) {
    out_idx[j] = order[static_cast<std::size_t>(j)];
    out_dist[j] = row[order[static_cast<std::size_t>(j)]];
  }
}

}  // namespace

KnnResult knn_search(const gemm::Matrix& queries,
                     const gemm::Matrix& references, const KnnOptions& opts) {
  EGEMM_EXPECTS(queries.cols() == references.cols());
  EGEMM_EXPECTS(opts.k >= 1 &&
                static_cast<std::size_t>(opts.k) <= references.rows());
  const std::size_t m = queries.rows();
  const std::size_t n = references.rows();

  // Cross terms via one large GEMM: Q x R^T (m x n).
  gemm::GemmContext& ctx =
      opts.context != nullptr ? *opts.context : gemm::default_context();

  KnnResult result;
  // Explicit scale context shared by the single GEMM and every grouped
  // chunk, so the grouped path resolves to the same scheme.
  core::AccuracyContract contract;
  contract.max_abs_error = opts.precision_target;
  contract.a_scale = gemm::max_abs(queries);
  contract.b_scale = gemm::max_abs(references);
  const auto plan_shape =
      [&](std::size_t rows) -> std::shared_ptr<const gemm::GemmPlan> {
    if (opts.precision_target <= 0.0) {
      return ctx.plan(opts.backend, rows, n, queries.cols());
    }
    const gemm::GemmContext::ContractPlan cp =
        ctx.plan_contract(rows, n, queries.cols(), contract);
    if (!cp.resolution.feasible) {
      char message[192];
      std::snprintf(message, sizeof(message),
                    "knn: no emulation scheme meets the accuracy contract: "
                    "target %.6g, tightest rung (%s) only proves %.6g",
                    opts.precision_target,
                    core::scheme_name(cp.resolution.tightest),
                    cp.resolution.tightest_worst_abs);
      throw std::invalid_argument(message);
    }
    result.scheme = core::scheme_name(cp.resolution.scheme);
    return cp.plan;
  };
  const gemm::Matrix rt = gemm::transpose(references);

  // Grouped path (DESIGN.md §18): query chunks execute as one flattened
  // stream, bit-identical to the single (m x n) GEMM.
  const std::size_t group =
      opts.group_rows == 0 ? m : std::min(opts.group_rows, m);
  const std::size_t chunk_count = m == 0 ? 0 : (m + group - 1) / group;
  const bool grouped = chunk_count > 1;
  gemm::Matrix cross;
  std::vector<gemm::Matrix> query_chunks(grouped ? chunk_count : 0);
  std::vector<gemm::Matrix> cross_chunks(grouped ? chunk_count : 0);
  if (grouped) {
    std::vector<gemm::GroupedGemm> work(chunk_count);
    for (std::size_t ci = 0; ci < chunk_count; ++ci) {
      const std::size_t start = ci * group;
      const std::size_t rows = std::min(group, m - start);
      query_chunks[ci].resize(rows, queries.cols());
      std::copy(queries.row(start),
                queries.row(start) + rows * queries.cols(),
                query_chunks[ci].data().begin());
      work[ci] = gemm::GroupedGemm{plan_shape(rows), &query_chunks[ci], &rt,
                                   nullptr, &cross_chunks[ci]};
    }
    ctx.execute_grouped(work);
  } else {
    plan_shape(m)->execute(ctx, queries, rt, nullptr, cross);
  }

  const std::vector<float> qn = row_norms(queries);
  const std::vector<float> rn = row_norms(references);
  result.indices = gemm::BasicMatrix<std::int32_t>(
      m, static_cast<std::size_t>(opts.k));
  result.distances = gemm::Matrix(m, static_cast<std::size_t>(opts.k));

  std::vector<float> dist_row(n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* cross_row =
        grouped ? cross_chunks[i / group].row(i % group) : cross.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      // Clamp: rounding can push tiny true distances slightly negative.
      dist_row[j] = std::max(0.0f, qn[i] + rn[j] - 2.0f * cross_row[j]);
    }
    select_k(dist_row.data(), n, opts.k, result.indices.row(i),
             result.distances.row(i));
  }
  return result;
}

KnnResult knn_bruteforce(const gemm::Matrix& queries,
                         const gemm::Matrix& references, int k) {
  EGEMM_EXPECTS(queries.cols() == references.cols());
  const std::size_t m = queries.rows();
  const std::size_t n = references.rows();

  KnnResult result;
  result.indices =
      gemm::BasicMatrix<std::int32_t>(m, static_cast<std::size_t>(k));
  result.distances = gemm::Matrix(m, static_cast<std::size_t>(k));

  std::vector<float> dist_row(n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t d = 0; d < queries.cols(); ++d) {
        const double diff = static_cast<double>(queries.at(i, d)) -
                            static_cast<double>(references.at(j, d));
        acc += diff * diff;
      }
      dist_row[j] = static_cast<float>(acc);
    }
    select_k(dist_row.data(), n, k, result.indices.row(i),
             result.distances.row(i));
  }
  return result;
}

double knn_agreement(const KnnResult& a, const KnnResult& b) {
  EGEMM_EXPECTS(a.indices.rows() == b.indices.rows() &&
                a.indices.cols() == b.indices.cols());
  if (a.indices.size() == 0) return 1.0;
  std::size_t matches = 0;
  for (std::size_t i = 0; i < a.indices.size(); ++i) {
    if (a.indices.data()[i] == b.indices.data()[i]) ++matches;
  }
  return static_cast<double>(matches) /
         static_cast<double>(a.indices.size());
}

}  // namespace egemm::apps
