#pragma once
// Structured per-call records (DESIGN.md §17): every GemmPlan::execute
// deposits one CallRecord -- shape, scheme, ISA tier, plan-lookup outcome,
// per-stage nanoseconds, moved bytes and effective FLOPs -- into a
// lock-free per-thread ring. A consumer drains the rings at quiescence (or
// periodically) and aggregates them into per-shape-class stage attribution
// with log-linear latency quantiles (obs/latency.hpp).
//
// Concurrency contract: each ring is single-producer (its owning thread)
// and the producer never blocks -- when the ring is full the NEW record is
// dropped and the dropped counter bumped, mirroring the trace buffer's cap
// semantics. Consumers serialize against each other on a global mutex and
// synchronize with producers through release/acquire head/tail pairs, so
// the whole path is data-race-free under TSan without any producer-side
// lock or RMW.
//
// With EGEMM_OBSERVABILITY=OFF the recording entry point compiles to a
// no-op and drains always return empty; the aggregation types stay
// available so tooling builds unconditionally.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"

namespace egemm::obs {

/// How the executed plan was obtained immediately before this call on the
/// calling thread: a plan-cache hit, a miss (fresh build), or unknown (the
/// caller held the plan across calls, or the backend is direct).
enum class PlanLookup : std::uint8_t { kUnknown = 0, kHit = 1, kMiss = 2 };

/// One GemmPlan::execute -- or one shape class of a grouped batch -- in
/// 96 bytes. Stage fields cover the emulated pipeline
/// (split/pack/mma/combine); direct binary32 backends carry only
/// total_ns. mma/combine are the engine wall segment apportioned by
/// worker-side accumulation, so split+pack+mma+combine approaches total_ns
/// from below (the residual is workspace lease/resize bookkeeping).
/// Grouped executes deposit one record per shape class sharing the batch's
/// process-unique batch_id, with `batch` counting the class's items and
/// total_ns the batch wall scaled by the class's FLOP share.
struct CallRecord {
  std::uint64_t start_ns = 0;    ///< obs::monotonic_ns() at entry
  std::uint64_t total_ns = 0;    ///< wall time of the whole execute
  std::uint64_t split_ns = 0;    ///< plane-decomposition pass
  std::uint64_t pack_ns = 0;     ///< tile packing (packed engine only)
  std::uint64_t mma_ns = 0;      ///< emulated Tensor Core compute
  std::uint64_t combine_ns = 0;  ///< accumulator writeback
  std::uint64_t flops = 0;       ///< effective FLOPs (2 m n k)
  std::uint64_t bytes_moved = 0; ///< inputs + output + workspace traffic
  std::uint32_t m = 0, n = 0, k = 0;
  std::uint32_t tid = 0;         ///< obs::current_thread_id()
  std::uint32_t batch_id = 0;    ///< grouped-execute id; 0 = unbatched
  std::uint32_t batch = 1;       ///< GEMMs this record covers (1 = single)
  std::int8_t scheme = -1;       ///< core::SchemeId, -1 direct/custom
  std::uint8_t backend = 0;      ///< gemm::Backend value
  std::uint8_t engine = 0;       ///< gemm::ExecEngine value
  std::uint8_t isa = 0;          ///< simd::IsaLevel value
  PlanLookup lookup = PlanLookup::kUnknown;
};

/// Runtime switch for call recording (default on; the producer cost is one
/// ring store plus the per-stage clock reads in the engines).
bool call_records_enabled() noexcept;
void set_call_records(bool enabled) noexcept;

/// Deposits one record into the calling thread's ring; drops it (and bumps
/// the dropped count plus the callrec.dropped counter) when the ring is
/// full. No-op when disabled or compiled out.
void record_call(const CallRecord& rec);

/// Removes and returns every buffered record across all threads, oldest
/// first per thread. Safe to call concurrently with producers.
std::vector<CallRecord> drain_call_records();

/// Records dropped at full rings since start / the last clear.
std::uint64_t dropped_call_records() noexcept;

/// Discards all buffered records and zeroes the dropped count.
void clear_call_records();

// -- aggregation -------------------------------------------------------------

/// Per-(shape, recipe, ISA) aggregate: totals, stage attribution, and a
/// log-linear latency accumulator over per-call total_ns, so quantile
/// columns inherit kLatencyQuantileRelErr.
struct CallClassSummary {
  std::uint32_t m = 0, n = 0, k = 0;
  std::uint32_t batch = 1;  ///< items per record in this class
  std::int8_t scheme = -1;
  std::uint8_t backend = 0;
  std::uint8_t engine = 0;
  std::uint8_t isa = 0;

  std::uint64_t calls = 0;
  std::uint64_t gemms = 0;           ///< sum of record batch sizes
  std::uint64_t batched_records = 0; ///< records with a nonzero batch_id
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t split_ns = 0;
  std::uint64_t pack_ns = 0;
  std::uint64_t mma_ns = 0;
  std::uint64_t combine_ns = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes_moved = 0;
  LatencyAccumulator latency;

  /// Aggregate effective rate; FLOPs per nanosecond is numerically GFLOP/s.
  double gflops() const noexcept {
    return total_ns == 0 ? 0.0
                         : static_cast<double>(flops) /
                               static_cast<double>(total_ns);
  }
  /// Fraction of wall time the four stages account for (<= ~1; the
  /// remainder is workspace lease/resize bookkeeping).
  double stage_coverage() const noexcept {
    return total_ns == 0
               ? 0.0
               : static_cast<double>(split_ns + pack_ns + mma_ns +
                                     combine_ns) /
                     static_cast<double>(total_ns);
  }
};

struct CallSummary {
  std::vector<CallClassSummary> classes;  ///< sorted by (m, n, k, scheme)
  std::uint64_t records = 0;              ///< records aggregated
  std::uint64_t dropped = 0;              ///< dropped_call_records() at build
};

/// Groups records by (m, n, k, batch, scheme, backend, engine, isa) and
/// reduces each group, so batched traffic is attributed per batch class
/// rather than folded into the single-call rows. `dropped` is stamped from
/// the live dropped count.
CallSummary summarize_calls(std::span<const CallRecord> records);

/// Optional id -> name resolvers for the JSON block below. The obs layer
/// sits below core/gemm/simd, so callers that know those enums (the bench
/// harness, egemm_stats) pass their name functions in; with a null
/// resolver only the numeric id is emitted.
struct CallJsonNames {
  const char* (*scheme)(std::int8_t) = nullptr;
  const char* (*backend)(std::uint8_t) = nullptr;
  const char* (*engine)(std::uint8_t) = nullptr;
  const char* (*isa)(std::uint8_t) = nullptr;
};

/// The summary as a JSON object (same embedding convention as
/// metrics_json_block: lines after the first prefixed with `indent`, no
/// trailing newline) for BENCH_micro.json / egemm_stats --json.
std::string call_summary_json_block(const CallSummary& summary,
                                    const std::string& indent = "  ",
                                    const CallJsonNames& names = {});

}  // namespace egemm::obs
