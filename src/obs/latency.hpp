#pragma once
// Log-linear (HDR-style) latency bucketing (DESIGN.md §17). Shared bucket
// math for the sharded LatencyHistogram metric (obs/metrics.hpp) and the
// plain LatencyAccumulator below, so every quantile in the system -- the
// registry's egemm.execute.latency, the per-shape-class call summaries,
// the egemm_stats table -- carries the same proven relative-error bound.
//
// Layout: values below 32 get one exact bucket each (sub-microsecond
// latencies are small integers of nanoseconds and deserve exact counts);
// from 32 up, each power-of-two octave is divided into 2^kLatencySubBits
// = 16 equal sub-buckets. A bucket in octave w (values with bit width w)
// spans 2^(w-5) consecutive integers starting at (16 + sub) << (w - 5),
// so bucket_width / bucket_lower <= 1/16 everywhere: nearest-rank
// quantiles read off the bucket midpoint are within kLatencyQuantileRelErr
// of the exact sorted-sample quantile (tests/test_telemetry.cpp pins this
// on uniform/lognormal/bimodal samples). Values of 2^38 ns (~275 s) and
// above saturate into the last bucket.
//
// Everything here is plain arithmetic with no registry or macro
// dependencies; it compiles identically with EGEMM_OBSERVABILITY=OFF (the
// *recording* paths are what the switch removes).

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace egemm::obs {

/// Sub-buckets per octave as a power of two: 16 sub-buckets.
inline constexpr int kLatencySubBits = 4;

/// Values below this get one exact bucket each (indices 0..31).
inline constexpr std::uint64_t kLatencyLinearMax = 32;

/// First octave bucketed log-linearly: bit width of kLatencyLinearMax.
inline constexpr int kLatencyMinOctaveWidth = 6;

/// Last distinguishable octave; wider values saturate into its top bucket.
inline constexpr int kLatencyMaxOctaveWidth = 38;

/// Total bucket count: 32 linear + 33 octaves x 16 sub-buckets = 560.
inline constexpr std::size_t kLatencyBuckets =
    static_cast<std::size_t>(kLatencyLinearMax) +
    (static_cast<std::size_t>(kLatencyMaxOctaveWidth - kLatencyMinOctaveWidth +
                              1)
     << kLatencySubBits);
static_assert(kLatencyBuckets == 560);

/// Worst-case relative error of a bucket-midpoint quantile against the
/// exact sorted-sample quantile (same nearest-rank convention on both
/// sides): the two values share a bucket, whose width/lower ratio is at
/// most 1/16 in the octave region and 0 in the exact linear region.
inline constexpr double kLatencyQuantileRelErr = 1.0 / 16.0;

/// The bucket holding `v`. Total order: every bucket covers a contiguous
/// value range and ranges are adjacent and increasing.
constexpr std::size_t latency_bucket_index(std::uint64_t v) noexcept {
  if (v < kLatencyLinearMax) return static_cast<std::size_t>(v);
  const int width = static_cast<int>(std::bit_width(v));
  if (width > kLatencyMaxOctaveWidth) return kLatencyBuckets - 1;
  const auto sub = static_cast<std::size_t>(
      (v >> (width - 1 - kLatencySubBits)) & ((1U << kLatencySubBits) - 1));
  return static_cast<std::size_t>(kLatencyLinearMax) +
         (static_cast<std::size_t>(width - kLatencyMinOctaveWidth)
          << kLatencySubBits) +
         sub;
}

/// Smallest value in bucket `b`.
constexpr std::uint64_t latency_bucket_lower(std::size_t b) noexcept {
  if (b < kLatencyLinearMax) return b;
  const std::size_t rel = b - static_cast<std::size_t>(kLatencyLinearMax);
  const int width = kLatencyMinOctaveWidth +
                    static_cast<int>(rel >> kLatencySubBits);
  const std::uint64_t sub = rel & ((1U << kLatencySubBits) - 1);
  return ((std::uint64_t{1} << kLatencySubBits) + sub) << (width - 5);
}

/// Number of consecutive integers bucket `b` covers (the last bucket also
/// absorbs everything above the representable range).
constexpr std::uint64_t latency_bucket_width(std::size_t b) noexcept {
  if (b < kLatencyLinearMax) return 1;
  const int width = kLatencyMinOctaveWidth +
                    static_cast<int>((b - kLatencyLinearMax) >> kLatencySubBits);
  return std::uint64_t{1} << (width - 5);
}

/// The value a quantile query reports for bucket `b`: the exact value in
/// the linear region, the arithmetic midpoint in the octave region.
constexpr std::uint64_t latency_bucket_representative(std::size_t b) noexcept {
  if (b < kLatencyLinearMax) return b;
  return latency_bucket_lower(b) + latency_bucket_width(b) / 2;
}

/// Nearest-rank quantile over a bucket count array: the representative of
/// the bucket holding sample number max(1, ceil(q * count)). Returns 0
/// when `count` is zero. `buckets` must have kLatencyBuckets entries and
/// their sum must equal `count`.
std::uint64_t latency_quantile(std::span<const std::uint64_t> buckets,
                               std::uint64_t count, double q) noexcept;

/// Single-threaded bucket accumulator: the aggregation-side twin of the
/// sharded LatencyHistogram metric. summarize_calls() folds per-call
/// durations through one of these per shape class, so the per-class
/// p50/p99 columns inherit the same kLatencyQuantileRelErr bound the
/// registry histograms are tested under.
class LatencyAccumulator {
 public:
  void record(std::uint64_t v) noexcept {
    ++buckets_[latency_bucket_index(v)];
    sum_ += v;
    ++count_;
  }

  void merge(const LatencyAccumulator& other) noexcept {
    for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
      buckets_[b] += other.buckets_[b];
    }
    sum_ += other.sum_;
    count_ += other.count_;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t quantile(double q) const noexcept {
    return latency_quantile(buckets(), count_, q);
  }
  std::span<const std::uint64_t> buckets() const noexcept {
    return {buckets_.data(), buckets_.size()};
  }

 private:
  std::array<std::uint64_t, kLatencyBuckets> buckets_{};
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace egemm::obs
