#pragma once
// Exporters for the observability layer (DESIGN.md §12):
//  * Chrome trace_event JSON -- load the file in chrome://tracing or
//    ui.perfetto.dev to see the span timeline per thread track;
//  * plain-text metrics dump for terminals;
//  * a JSON metrics *block* (an object, no trailing newline) that callers
//    splice into their own documents (BENCH_micro.json, the accuracy-audit
//    report).

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace egemm::obs {

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters). Shared by every JSON writer in the repo.
void append_json_escaped(std::string& out, std::string_view s);

/// The registry as a JSON object:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {count, sum, mean, buckets: {bit_width: n}}}}
/// Lines after the first are prefixed with `indent` so the block embeds
/// cleanly at any nesting depth. No trailing newline.
std::string metrics_json_block(const MetricsSnapshot& snapshot,
                               const std::string& indent = "  ");
std::string metrics_json_block(const std::string& indent = "  ");

/// Human-readable registry dump, one metric per line.
void dump_metrics(std::ostream& os);
void dump_metrics(std::ostream& os, const MetricsSnapshot& snapshot);

/// The recorded spans as a Chrome trace_event JSON document ("X" complete
/// events plus thread_name metadata).
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace egemm::obs
