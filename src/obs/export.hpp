#pragma once
// Exporters for the observability layer (DESIGN.md §12, §17):
//  * Chrome trace_event JSON -- load the file in chrome://tracing or
//    ui.perfetto.dev to see the span timeline per thread track;
//  * plain-text metrics dump for terminals;
//  * a JSON metrics *block* (an object, no trailing newline) that callers
//    splice into their own documents (BENCH_micro.json, the accuracy-audit
//    report);
//  * OpenMetrics text exposition (Prometheus-scrapeable) with latency
//    histograms rendered as cumulative `le` buckets in seconds.

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace egemm::obs {

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters). Shared by every JSON writer in the repo.
void append_json_escaped(std::string& out, std::string_view s);

/// The registry as a JSON object:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {count, sum, mean, buckets: {bit_width: n}}}}
/// Lines after the first are prefixed with `indent` so the block embeds
/// cleanly at any nesting depth. No trailing newline.
std::string metrics_json_block(const MetricsSnapshot& snapshot,
                               const std::string& indent = "  ");
std::string metrics_json_block(const std::string& indent = "  ");

/// Human-readable registry dump, one metric per line.
void dump_metrics(std::ostream& os);
void dump_metrics(std::ostream& os, const MetricsSnapshot& snapshot);

/// The registry in OpenMetrics text exposition format (the Prometheus
/// scrape format): counters become `<name>_total`, gauges plain samples,
/// bit-width histograms cumulative `le` buckets on the raw value, and
/// latency histograms `<name>_seconds` with `le` in seconds. Metric names
/// are sanitized ('.'/'-' -> '_'). The document ends with `# EOF`.
std::string openmetrics_text(const MetricsSnapshot& snapshot);
std::string openmetrics_text();

/// Output format selector for the `--metrics-format` CLI flags.
enum class MetricsFormat { kJson, kOpenMetrics };

/// Parses "json" / "openmetrics"; false (and `out` untouched) otherwise.
bool parse_metrics_format(std::string_view text, MetricsFormat& out);

/// The snapshot rendered in `format`: a standalone JSON document (the
/// metrics block plus trailing newline) or the OpenMetrics exposition.
std::string render_metrics(const MetricsSnapshot& snapshot,
                           MetricsFormat format);

/// Writes render_metrics(...) to `path`, or to stdout when `path` is
/// empty; false on I/O failure.
bool write_metrics(const std::string& path, MetricsFormat format);

/// The recorded spans as a Chrome trace_event JSON document ("X" complete
/// events plus thread_name metadata).
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace egemm::obs
