#include "obs/export.hpp"

#include <cstdio>
#include <ostream>

namespace egemm::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  append_json_escaped(out, s);
  out += '"';
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string metrics_json_block(const MetricsSnapshot& snapshot,
                               const std::string& indent) {
  std::string out = "{\n";
  out += indent;
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "    ";
    append_quoted(out, snapshot.counters[i].name);
    out += ": ";
    append_u64(out, snapshot.counters[i].value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n" + indent + "  },\n";
  out += indent;
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "    ";
    append_quoted(out, snapshot.gauges[i].name);
    out += ": ";
    append_i64(out, snapshot.gauges[i].value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n" + indent + "  },\n";
  out += indent;
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "    ";
    append_quoted(out, h.name);
    out += ": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"mean\": ";
    append_double(out, h.mean());
    // Sparse buckets keyed by bit width (bucket b covers [2^(b-1), 2^b)).
    out += ", \"buckets\": {";
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += '"';
      append_u64(out, b);
      out += "\": ";
      append_u64(out, h.buckets[b]);
    }
    out += "}}";
  }
  out += snapshot.histograms.empty() ? "},\n" : "\n" + indent + "  },\n";
  out += indent;
  out += "  \"latency\": {";
  for (std::size_t i = 0; i < snapshot.latencies.size(); ++i) {
    const LatencySample& h = snapshot.latencies[i];
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "    ";
    append_quoted(out, h.name);
    out += ": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum_ns\": ";
    append_u64(out, h.sum);
    out += ", \"mean_ns\": ";
    append_double(out, h.mean());
    out += ",\n";
    out += indent;
    out += "     \"p50_ns\": ";
    append_u64(out, h.quantile(0.50));
    out += ", \"p90_ns\": ";
    append_u64(out, h.quantile(0.90));
    out += ", \"p99_ns\": ";
    append_u64(out, h.quantile(0.99));
    out += ", \"p999_ns\": ";
    append_u64(out, h.quantile(0.999));
    // Sparse buckets keyed by the bucket's lower bound in nanoseconds.
    out += ", \"buckets\": {";
    bool first = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += '"';
      append_u64(out, latency_bucket_lower(b));
      out += "\": ";
      append_u64(out, h.buckets[b]);
    }
    out += "}}";
  }
  out += snapshot.latencies.empty() ? "}\n" : "\n" + indent + "  }\n";
  out += indent;
  out += "}";
  return out;
}

std::string metrics_json_block(const std::string& indent) {
  return metrics_json_block(registry().snapshot(), indent);
}

void dump_metrics(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "== metrics ==\n";
  for (const CounterSample& c : snapshot.counters) {
    os << "counter    " << c.name << " = " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    os << "gauge      " << g.name << " = " << g.value << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    os << "histogram  " << h.name << " count=" << h.count << " sum=" << h.sum
       << " mean=" << h.mean() << "\n";
  }
  for (const LatencySample& h : snapshot.latencies) {
    os << "latency    " << h.name << " count=" << h.count
       << " mean_ns=" << h.mean() << " p50_ns=" << h.quantile(0.50)
       << " p99_ns=" << h.quantile(0.99) << "\n";
  }
}

void dump_metrics(std::ostream& os) {
  dump_metrics(os, registry().snapshot());
}

namespace {

/// OpenMetrics names are [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's dotted
/// names map '.'/'-' (and anything else) to '_'.
std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void append_seconds(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(ns) / 1e9);
  out += buf;
}

}  // namespace

std::string openmetrics_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = sanitize_metric_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + "_total ";
    append_u64(out, c.value);
    out += '\n';
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = sanitize_metric_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ';
    append_i64(out, g.value);
    out += '\n';
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = sanitize_metric_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    // Bucket 0 holds exactly zero (le="0"); bucket b covers
    // [2^(b-1), 2^b) so its inclusive upper bound is 2^b - 1. The last
    // bucket absorbs everything larger and folds into +Inf.
    for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out += name + "_bucket{le=\"";
      append_u64(out, b == 0 ? 0 : (std::uint64_t{1} << b) - 1);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += '\n';
    out += name + "_sum ";
    append_u64(out, h.sum);
    out += '\n';
    out += name + "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  for (const LatencySample& h : snapshot.latencies) {
    // Latency histograms record nanoseconds; the exposition uses base-unit
    // seconds per the OpenMetrics convention, hence the _seconds suffix.
    const std::string name = sanitize_metric_name(h.name) + "_seconds";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b + 1 < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out += name + "_bucket{le=\"";
      append_seconds(out, latency_bucket_lower(b) + latency_bucket_width(b));
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += '\n';
    out += name + "_sum ";
    append_seconds(out, h.sum);
    out += '\n';
    out += name + "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  out += "# EOF\n";
  return out;
}

std::string openmetrics_text() {
  return openmetrics_text(registry().snapshot());
}

bool parse_metrics_format(std::string_view text, MetricsFormat& out) {
  if (text == "json") {
    out = MetricsFormat::kJson;
    return true;
  }
  if (text == "openmetrics") {
    out = MetricsFormat::kOpenMetrics;
    return true;
  }
  return false;
}

std::string render_metrics(const MetricsSnapshot& snapshot,
                           MetricsFormat format) {
  if (format == MetricsFormat::kOpenMetrics) return openmetrics_text(snapshot);
  return metrics_json_block(snapshot, "") + "\n";
}

bool write_metrics(const std::string& path, MetricsFormat format) {
  const std::string text = render_metrics(registry().snapshot(), format);
  if (path.empty()) {
    return std::fwrite(text.data(), 1, text.size(), stdout) == text.size();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = collect_trace();
  const auto thread_names = trace_thread_names();
  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  bool first = true;
  for (const auto& [tid, name] : thread_names) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"ph\": \"M\", \"pid\": 1, \"tid\": ";
    append_u64(out, tid);
    out += ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    append_quoted(out, name);
    out += "}}";
  }
  for (const TraceEvent& event : events) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"ph\": \"X\", \"pid\": 1, \"tid\": ";
    append_u64(out, event.tid);
    out += ", \"name\": ";
    append_quoted(out, event.name);
    // Chrome trace timestamps are microseconds; keep ns resolution via the
    // fractional part.
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f, \"dur\": %.3f}",
                  static_cast<double>(event.start_ns) / 1e3,
                  static_cast<double>(event.dur_ns) / 1e3);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace egemm::obs
