#include "obs/export.hpp"

#include <cstdio>
#include <ostream>

namespace egemm::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  append_json_escaped(out, s);
  out += '"';
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string metrics_json_block(const MetricsSnapshot& snapshot,
                               const std::string& indent) {
  std::string out = "{\n";
  out += indent;
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "    ";
    append_quoted(out, snapshot.counters[i].name);
    out += ": ";
    append_u64(out, snapshot.counters[i].value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n" + indent + "  },\n";
  out += indent;
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "    ";
    append_quoted(out, snapshot.gauges[i].name);
    out += ": ";
    append_i64(out, snapshot.gauges[i].value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n" + indent + "  },\n";
  out += indent;
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "    ";
    append_quoted(out, h.name);
    out += ": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"mean\": ";
    append_double(out, h.mean());
    // Sparse buckets keyed by bit width (bucket b covers [2^(b-1), 2^b)).
    out += ", \"buckets\": {";
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += '"';
      append_u64(out, b);
      out += "\": ";
      append_u64(out, h.buckets[b]);
    }
    out += "}}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n" + indent + "  }\n";
  out += indent;
  out += "}";
  return out;
}

std::string metrics_json_block(const std::string& indent) {
  return metrics_json_block(registry().snapshot(), indent);
}

void dump_metrics(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "== metrics ==\n";
  for (const CounterSample& c : snapshot.counters) {
    os << "counter    " << c.name << " = " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    os << "gauge      " << g.name << " = " << g.value << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    os << "histogram  " << h.name << " count=" << h.count << " sum=" << h.sum
       << " mean=" << h.mean() << "\n";
  }
}

void dump_metrics(std::ostream& os) {
  dump_metrics(os, registry().snapshot());
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = collect_trace();
  const auto thread_names = trace_thread_names();
  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  bool first = true;
  for (const auto& [tid, name] : thread_names) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"ph\": \"M\", \"pid\": 1, \"tid\": ";
    append_u64(out, tid);
    out += ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    append_quoted(out, name);
    out += "}}";
  }
  for (const TraceEvent& event : events) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"ph\": \"X\", \"pid\": 1, \"tid\": ";
    append_u64(out, event.tid);
    out += ", \"name\": ";
    append_quoted(out, event.name);
    // Chrome trace timestamps are microseconds; keep ns resolution via the
    // fractional part.
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f, \"dur\": %.3f}",
                  static_cast<double>(event.start_ns) / 1e3,
                  static_cast<double>(event.dur_ns) / 1e3);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace egemm::obs
