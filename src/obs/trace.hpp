#pragma once
// Scoped span tracing (DESIGN.md §12): RAII spans record per-stage
// durations with small stable thread ids into per-thread buffers, exported
// as Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev).
//
// Recording is opt-in at runtime (set_tracing(true)); a span whose
// lifetime sees tracing disabled costs one relaxed atomic load and no
// clock read. With EGEMM_OBSERVABILITY=OFF the EGEMM_TRACE_SCOPE macro
// compiles to nothing and ScopedSpan is an empty type.
//
// Spans nest naturally: the Chrome "X" (complete) event encoding carries
// begin + duration, so overlapping spans on one thread render as a stack.

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace egemm::obs {

/// Small dense id for the calling thread (assigned on first use, starts at
/// 1); doubles as the Chrome trace "tid".
std::uint32_t current_thread_id() noexcept;

/// Names the calling thread's trace track ("main", "pool-worker-3", ...).
void set_thread_name(std::string name);

void set_tracing(bool enabled) noexcept;

namespace detail {
extern std::atomic<bool> tracing_flag;
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns);
}  // namespace detail

inline bool tracing_enabled() noexcept {
  return detail::tracing_flag.load(std::memory_order_relaxed);
}

/// Nanoseconds since the first observability clock read in this process
/// (keeps Chrome trace timestamps small).
inline std::uint64_t monotonic_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

struct TraceEvent {
  const char* name;  ///< static-storage string (macro passes literals)
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint32_t tid;
};

/// All recorded events, merged across threads and sorted by start time.
/// Call at quiescence (tracing disabled or all instrumented work joined).
std::vector<TraceEvent> collect_trace();

/// (tid, name) pairs for every thread that recorded at least one event.
std::vector<std::pair<std::uint32_t, std::string>> trace_thread_names();

/// Events discarded because a thread hit its buffer cap. Every drop also
/// bumps the `trace.dropped_spans` registry counter, so the loss is
/// visible in the text/JSON/OpenMetrics exporters, not only through this
/// accessor.
std::uint64_t dropped_trace_events() noexcept;

/// Overrides the per-thread span buffer cap (0 restores the built-in
/// default). Test hook for exercising the drop path without recording a
/// million spans; applies to buffers from the next append on.
void set_trace_buffer_capacity(std::size_t cap) noexcept;

/// Drops all recorded events and the dropped-event count.
void clear_trace();

#if EGEMM_OBSERVABILITY_ENABLED

/// RAII span: records [construction, destruction) under `name` when
/// tracing was enabled at construction. `name` must outlive the trace
/// (pass a string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (tracing_enabled()) {
      name_ = name;
      start_ns_ = monotonic_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) detail::record_span(name_, start_ns_, monotonic_ns());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#define EGEMM_TRACE_SCOPE(name)                                       \
  const ::egemm::obs::ScopedSpan EGEMM_OBS_CONCAT(egemm_obs_span_,    \
                                                  __LINE__) {         \
    name                                                              \
  }

#else  // EGEMM_OBSERVABILITY_ENABLED

/// Disabled build: empty type, macro compiles to nothing.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#define EGEMM_TRACE_SCOPE(name) static_cast<void>(0)

#endif  // EGEMM_OBSERVABILITY_ENABLED

}  // namespace egemm::obs
