#pragma once
// Process-wide metrics registry (DESIGN.md §12): named counters, gauges and
// histograms behind hot-path-safe handles.
//
// Sharding: every counter/histogram slot is a per-thread cell; an increment
// is a relaxed load+store on the calling thread's own cell (single writer,
// so the pair is exact and never contends), and readers aggregate across
// all thread blocks on demand. Gauges carry last-value semantics, which do
// not shard, so they are a single relaxed atomic -- register gauges only on
// low-rate paths (queue depth, configuration).
//
// Call sites use the EGEMM_COUNTER_ADD / EGEMM_GAUGE_* /
// EGEMM_HISTOGRAM_RECORD macros below: the registry lookup happens once per
// call site (function-local static), and with EGEMM_OBSERVABILITY=OFF every
// macro compiles to literally nothing (tests/test_obs.cpp pins this with
// constexpr/emptiness checks).

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency.hpp"

#ifndef EGEMM_OBSERVABILITY_ENABLED
#define EGEMM_OBSERVABILITY_ENABLED 1
#endif

namespace egemm::obs {

/// Compile-time switch: EGEMM_OBSERVABILITY=OFF (CMake) defines
/// EGEMM_OBSERVABILITY_ENABLED=0 and every recording path becomes a no-op.
inline constexpr bool kEnabled = EGEMM_OBSERVABILITY_ENABLED != 0;

namespace detail {

/// Upper bound on sharded slots across all metrics; a counter consumes one
/// slot, a bit-width histogram kBuckets + 2, a log-linear latency
/// histogram kLatencyBuckets + 2 (562). 8192 slots (64 KiB per thread
/// block) fits a dozen latency histograms plus hundreds of counters, far
/// beyond what a single binary registers.
inline constexpr std::size_t kMaxSlots = 8192;

struct SlotBlock {
  std::array<std::atomic<std::uint64_t>, kMaxSlots> cells{};
};

/// Registers (once) and returns the calling thread's slot block. The block
/// is owned by the registry so aggregation keeps working after the thread
/// exits.
SlotBlock* acquire_slot_block();

extern thread_local SlotBlock* tl_slots;

inline SlotBlock& thread_slots() {
  SlotBlock* block = tl_slots;
  if (block == nullptr) block = acquire_slot_block();
  return *block;
}

/// Single-writer relaxed add: each cell is written only by its owning
/// thread, so load+store (no RMW) is exact and uncontended.
inline void cell_add(std::atomic<std::uint64_t>& cell,
                     std::uint64_t n) noexcept {
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

}  // namespace detail

class Registry;

/// Monotonic event/work counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    static_cast<void>(n);
    if constexpr (kEnabled) {
      detail::cell_add(detail::thread_slots().cells[slot_], n);
    }
  }

  /// Aggregated value across every thread that ever incremented.
  std::uint64_t value() const noexcept;

  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  Counter(std::string name, std::uint32_t slot)
      : name_(std::move(name)), slot_(slot) {}

  std::string name_;
  std::uint32_t slot_;
};

/// Last-value instrument (queue depth, configuration). Signed, single
/// atomic -- keep off hot paths.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    static_cast<void>(v);
    if constexpr (kEnabled) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    static_cast<void>(delta);
    if constexpr (kEnabled) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two histogram: bucket i counts values whose bit width is i
/// (bucket 0 is exactly zero, bucket i covers [2^(i-1), 2^i), the last
/// bucket absorbs everything larger). Tracks count and sum alongside.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::uint64_t value) noexcept {
    static_cast<void>(value);
    if constexpr (kEnabled) {
      const auto width = static_cast<std::size_t>(std::bit_width(value));
      const std::size_t bucket = width < kBuckets ? width : kBuckets - 1;
      detail::SlotBlock& block = detail::thread_slots();
      detail::cell_add(block.cells[slot_ + bucket], 1);
      detail::cell_add(block.cells[slot_ + kBuckets], value);
      detail::cell_add(block.cells[slot_ + kBuckets + 1], 1);
    }
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;

  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::uint32_t slot)
      : name_(std::move(name)), slot_(slot) {}

  std::string name_;
  std::uint32_t slot_;
};

/// Log-linear latency histogram (obs/latency.hpp bucket math): records a
/// nanosecond duration per call behind the same sharded single-writer slot
/// machinery as Counter/Histogram, so the hot path stays two relaxed
/// load+store pairs plus one bucket increment. Quantiles come off the
/// snapshot (LatencySample::quantile) with the kLatencyQuantileRelErr
/// bound. Use via EGEMM_LATENCY_RECORD.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = kLatencyBuckets;

  void record(std::uint64_t ns) noexcept {
    static_cast<void>(ns);
    if constexpr (kEnabled) {
      detail::SlotBlock& block = detail::thread_slots();
      detail::cell_add(block.cells[slot_ + latency_bucket_index(ns)], 1);
      detail::cell_add(block.cells[slot_ + kBuckets], ns);
      detail::cell_add(block.cells[slot_ + kBuckets + 1], 1);
    }
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;

  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  LatencyHistogram(std::string name, std::uint32_t slot)
      : name_(std::move(name)), slot_(slot) {}

  std::string name_;
  std::uint32_t slot_;
};

// -- read-side snapshot ------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

struct LatencySample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< nanoseconds
  std::vector<std::uint64_t> buckets;  ///< kLatencyBuckets entries

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Nearest-rank quantile in nanoseconds, within kLatencyQuantileRelErr
  /// of the exact sorted-sample quantile; 0 when empty.
  std::uint64_t quantile(double q) const noexcept {
    return latency_quantile({buckets.data(), buckets.size()}, count, q);
  }
};

/// A consistent-enough point-in-time read of the registry (individual cells
/// are read relaxed; totals are exact once writers quiesce). Samples are
/// sorted by name for stable output.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<LatencySample> latencies;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           latencies.empty();
  }
};

class Registry {
 public:
  /// Finds or creates the named metric. Handles are stable for the process
  /// lifetime, so call sites cache the reference in a local static.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  LatencyHistogram& latency(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every slot and gauge. Not synchronized against concurrent
  /// writers (a racing increment may be lost) -- quiesce first; intended
  /// for tests and between benchmark phases.
  void reset() noexcept;

 private:
  friend class Counter;
  friend class Histogram;
  friend class LatencyHistogram;
  friend detail::SlotBlock* detail::acquire_slot_block();

  std::uint32_t allocate_slots(std::size_t n);
  std::uint64_t aggregate(std::uint32_t slot) const noexcept;

  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::deque<std::unique_ptr<Gauge>> gauges_;  // Gauge owns an atomic
  std::deque<Histogram> histograms_;
  std::deque<LatencyHistogram> latencies_;
  std::vector<std::unique_ptr<detail::SlotBlock>> blocks_;
  std::uint32_t next_slot_ = 0;
};

/// The process-wide registry every macro and exporter reads.
Registry& registry();

}  // namespace egemm::obs

// -- recording macros --------------------------------------------------------

#define EGEMM_OBS_CONCAT_INNER(a, b) a##b
#define EGEMM_OBS_CONCAT(a, b) EGEMM_OBS_CONCAT_INNER(a, b)

#if EGEMM_OBSERVABILITY_ENABLED

#define EGEMM_COUNTER_ADD(name, delta)                          \
  do {                                                          \
    static ::egemm::obs::Counter& egemm_obs_counter_ref =       \
        ::egemm::obs::registry().counter(name);                 \
    egemm_obs_counter_ref.add(static_cast<std::uint64_t>(delta)); \
  } while (0)

#define EGEMM_GAUGE_ADD(name, delta)                          \
  do {                                                        \
    static ::egemm::obs::Gauge& egemm_obs_gauge_ref =         \
        ::egemm::obs::registry().gauge(name);                 \
    egemm_obs_gauge_ref.add(static_cast<std::int64_t>(delta)); \
  } while (0)

#define EGEMM_GAUGE_SET(name, value)                          \
  do {                                                        \
    static ::egemm::obs::Gauge& egemm_obs_gauge_ref =         \
        ::egemm::obs::registry().gauge(name);                 \
    egemm_obs_gauge_ref.set(static_cast<std::int64_t>(value)); \
  } while (0)

#define EGEMM_HISTOGRAM_RECORD(name, value)                        \
  do {                                                             \
    static ::egemm::obs::Histogram& egemm_obs_histogram_ref =      \
        ::egemm::obs::registry().histogram(name);                  \
    egemm_obs_histogram_ref.record(static_cast<std::uint64_t>(value)); \
  } while (0)

#define EGEMM_LATENCY_RECORD(name, ns)                               \
  do {                                                               \
    static ::egemm::obs::LatencyHistogram& egemm_obs_latency_ref =   \
        ::egemm::obs::registry().latency(name);                      \
    egemm_obs_latency_ref.record(static_cast<std::uint64_t>(ns));    \
  } while (0)

#else  // EGEMM_OBSERVABILITY_ENABLED

#define EGEMM_COUNTER_ADD(name, delta) static_cast<void>(0)
#define EGEMM_GAUGE_ADD(name, delta) static_cast<void>(0)
#define EGEMM_GAUGE_SET(name, value) static_cast<void>(0)
#define EGEMM_HISTOGRAM_RECORD(name, value) static_cast<void>(0)
#define EGEMM_LATENCY_RECORD(name, ns) static_cast<void>(0)

#endif  // EGEMM_OBSERVABILITY_ENABLED
