#include "obs/latency.hpp"

#include <algorithm>
#include <cmath>

namespace egemm::obs {

// Compile-time pins on the bucket geometry the header documents: adjacent
// contiguous ranges, exact linear region, and the 1/16 width/lower bound
// behind kLatencyQuantileRelErr.
static_assert(latency_bucket_index(0) == 0);
static_assert(latency_bucket_index(31) == 31);
static_assert(latency_bucket_index(32) == 32);
static_assert(latency_bucket_lower(32) == 32);
static_assert(latency_bucket_lower(48) == 64);
static_assert(latency_bucket_index((std::uint64_t{1} << 38) - 1) ==
              kLatencyBuckets - 1);
static_assert(latency_bucket_index(std::uint64_t{1} << 38) ==
              kLatencyBuckets - 1);
static_assert(latency_bucket_index(~std::uint64_t{0}) == kLatencyBuckets - 1);
static_assert(latency_bucket_lower(kLatencyBuckets - 1) +
                  latency_bucket_width(kLatencyBuckets - 1) ==
              std::uint64_t{1} << 38);
static_assert(16 * latency_bucket_width(100) <= latency_bucket_lower(100));

std::uint64_t latency_quantile(std::span<const std::uint64_t> buckets,
                               std::uint64_t count, double q) noexcept {
  if (count == 0 || buckets.size() != kLatencyBuckets) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return latency_bucket_representative(b);
  }
  // Unreachable when the bucket sum equals `count`; fall back to the top.
  return latency_bucket_representative(kLatencyBuckets - 1);
}

}  // namespace egemm::obs
