#include "obs/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace egemm::obs {

namespace detail {

thread_local SlotBlock* tl_slots = nullptr;

SlotBlock* acquire_slot_block() {
  Registry& reg = registry();
  auto block = std::make_unique<SlotBlock>();
  SlotBlock* raw = block.get();
  {
    const std::lock_guard<std::mutex> lock(reg.mutex_);
    reg.blocks_.push_back(std::move(block));
  }
  tl_slots = raw;
  return raw;
}

}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  return registry().aggregate(slot_);
}

std::uint64_t Histogram::count() const noexcept {
  return registry().aggregate(
      slot_ + static_cast<std::uint32_t>(kBuckets) + 1);
}

std::uint64_t Histogram::sum() const noexcept {
  return registry().aggregate(slot_ + static_cast<std::uint32_t>(kBuckets));
}

std::uint64_t LatencyHistogram::count() const noexcept {
  return registry().aggregate(
      slot_ + static_cast<std::uint32_t>(kBuckets) + 1);
}

std::uint64_t LatencyHistogram::sum() const noexcept {
  return registry().aggregate(slot_ + static_cast<std::uint32_t>(kBuckets));
}

std::uint32_t Registry::allocate_slots(std::size_t n) {
  // Caller holds mutex_.
  EGEMM_EXPECTS(next_slot_ + n <= detail::kMaxSlots);
  const std::uint32_t base = next_slot_;
  next_slot_ += static_cast<std::uint32_t>(n);
  return base;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Counter& c : counters_) {
    if (c.name_ == name) return c;
  }
  const std::uint32_t slot = allocate_slots(1);
  return counters_.emplace_back(Counter(std::string(name), slot));
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& g : gauges_) {
    if (g->name_ == name) return *g;
  }
  return *gauges_.emplace_back(
      std::unique_ptr<Gauge>(new Gauge(std::string(name))));
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Histogram& h : histograms_) {
    if (h.name_ == name) return h;
  }
  const std::uint32_t slot = allocate_slots(Histogram::kBuckets + 2);
  return histograms_.emplace_back(Histogram(std::string(name), slot));
}

LatencyHistogram& Registry::latency(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (LatencyHistogram& h : latencies_) {
    if (h.name_ == name) return h;
  }
  const std::uint32_t slot = allocate_slots(LatencyHistogram::kBuckets + 2);
  return latencies_.emplace_back(LatencyHistogram(std::string(name), slot));
}

std::uint64_t Registry::aggregate(std::uint32_t slot) const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& block : blocks_) {
    total += block->cells[slot].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto sum_slot = [&](std::uint32_t slot) {
    std::uint64_t total = 0;
    for (const auto& block : blocks_) {
      total += block->cells[slot].load(std::memory_order_relaxed);
    }
    return total;
  };
  snap.counters.reserve(counters_.size());
  for (const Counter& c : counters_) {
    snap.counters.push_back(CounterSample{c.name_, sum_slot(c.slot_)});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    snap.gauges.push_back(GaugeSample{g->name_, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const Histogram& h : histograms_) {
    HistogramSample sample;
    sample.name = h.name_;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      sample.buckets[b] =
          sum_slot(h.slot_ + static_cast<std::uint32_t>(b));
    }
    sample.sum =
        sum_slot(h.slot_ + static_cast<std::uint32_t>(Histogram::kBuckets));
    sample.count = sum_slot(
        h.slot_ + static_cast<std::uint32_t>(Histogram::kBuckets) + 1);
    snap.histograms.push_back(std::move(sample));
  }
  snap.latencies.reserve(latencies_.size());
  for (const LatencyHistogram& h : latencies_) {
    LatencySample sample;
    sample.name = h.name_;
    sample.buckets.resize(LatencyHistogram::kBuckets);
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      sample.buckets[b] =
          sum_slot(h.slot_ + static_cast<std::uint32_t>(b));
    }
    sample.sum = sum_slot(
        h.slot_ + static_cast<std::uint32_t>(LatencyHistogram::kBuckets));
    sample.count = sum_slot(
        h.slot_ + static_cast<std::uint32_t>(LatencyHistogram::kBuckets) + 1);
    snap.latencies.push_back(std::move(sample));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  std::sort(snap.latencies.begin(), snap.latencies.end(), by_name);
  return snap;
}

void Registry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& block : blocks_) {
    for (auto& cell : block->cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& g : gauges_) {
    g->value_.store(0, std::memory_order_relaxed);
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace egemm::obs
