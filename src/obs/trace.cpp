#include "obs/trace.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

namespace egemm::obs {

namespace {

/// Hard cap per thread so a forgotten set_tracing(false) in a long-running
/// process degrades to dropped events, not unbounded memory. Runtime-
/// adjustable (set_trace_buffer_capacity) so tests can exercise the drop
/// path cheaply.
constexpr std::size_t kDefaultMaxEventsPerThread = std::size_t{1} << 20;
std::atomic<std::size_t> g_max_events{kDefaultMaxEventsPerThread};

struct TraceBuffer {
  std::mutex mutex;  ///< serializes owner appends vs. collector reads
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::string name;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
};

TraceState& state() {
  static TraceState instance;
  return instance;
}

std::atomic<std::uint64_t> g_dropped{0};

thread_local std::shared_ptr<TraceBuffer> tl_buffer;

TraceBuffer& thread_buffer() {
  if (!tl_buffer) {
    auto buffer = std::make_shared<TraceBuffer>();
    buffer->tid = current_thread_id();
    buffer->name = "thread-" + std::to_string(buffer->tid);
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.buffers.push_back(buffer);
    tl_buffer = std::move(buffer);
  }
  return *tl_buffer;
}

}  // namespace

namespace detail {

std::atomic<bool> tracing_flag{false};

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns) {
  TraceBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= g_max_events.load(std::memory_order_relaxed)) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    EGEMM_COUNTER_ADD("trace.dropped_spans", 1);
    return;
  }
  buffer.events.push_back(TraceEvent{
      name, start_ns, end_ns >= start_ns ? end_ns - start_ns : 0,
      buffer.tid});
}

}  // namespace detail

std::uint32_t current_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

void set_thread_name(std::string name) {
  if constexpr (!kEnabled) return;
  TraceBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.name = std::move(name);
}

void set_tracing(bool enabled) noexcept {
  if constexpr (kEnabled) {
    detail::tracing_flag.store(enabled, std::memory_order_relaxed);
  } else {
    static_cast<void>(enabled);
  }
}

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> merged;
  TraceState& s = state();
  const std::lock_guard<std::mutex> state_lock(s.mutex);
  for (const auto& buffer : s.buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return merged;
}

std::vector<std::pair<std::uint32_t, std::string>> trace_thread_names() {
  std::vector<std::pair<std::uint32_t, std::string>> names;
  TraceState& s = state();
  const std::lock_guard<std::mutex> state_lock(s.mutex);
  for (const auto& buffer : s.buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    if (!buffer->events.empty()) {
      names.emplace_back(buffer->tid, buffer->name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t dropped_trace_events() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::size_t cap) noexcept {
  g_max_events.store(cap == 0 ? kDefaultMaxEventsPerThread : cap,
                     std::memory_order_relaxed);
}

void clear_trace() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> state_lock(s.mutex);
  for (const auto& buffer : s.buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace egemm::obs
