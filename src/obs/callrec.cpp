#include "obs/callrec.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <tuple>

#include "obs/export.hpp"

namespace egemm::obs {

namespace {

/// Ring capacity per producing thread (power of two; ~1.5 MiB of records).
/// Only threads that execute GEMMs allocate a ring. Full ring -> the new
/// record is dropped, same cap semantics as the trace buffers.
constexpr std::size_t kRingCapacity = std::size_t{1} << 14;
static_assert((kRingCapacity & (kRingCapacity - 1)) == 0);

struct CallRing {
  /// Producer-owned: next slot to write. Release-stored after the slot
  /// write so a consumer's acquire load sees the record fully formed.
  std::atomic<std::uint64_t> head{0};
  /// Consumer-owned: next slot to read. Release-stored after the slot
  /// reads so the producer's acquire load may safely overwrite.
  std::atomic<std::uint64_t> tail{0};
  std::vector<CallRecord> slots{std::vector<CallRecord>(kRingCapacity)};
};

struct RingState {
  std::mutex mutex;  ///< serializes consumers and ring registration
  std::vector<std::shared_ptr<CallRing>> rings;
};

RingState& state() {
  static RingState instance;
  return instance;
}

std::atomic<bool> g_enabled{true};
std::atomic<std::uint64_t> g_dropped{0};

thread_local std::shared_ptr<CallRing> tl_ring;

CallRing& thread_ring() {
  if (!tl_ring) {
    auto ring = std::make_shared<CallRing>();
    RingState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.rings.push_back(ring);
    tl_ring = std::move(ring);
  }
  return *tl_ring;
}

}  // namespace

bool call_records_enabled() noexcept {
  if constexpr (!kEnabled) return false;
  return g_enabled.load(std::memory_order_relaxed);
}

void set_call_records(bool enabled) noexcept {
  if constexpr (kEnabled) {
    g_enabled.store(enabled, std::memory_order_relaxed);
  } else {
    static_cast<void>(enabled);
  }
}

void record_call(const CallRecord& rec) {
  if constexpr (!kEnabled) {
    static_cast<void>(rec);
    return;
  }
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  CallRing& ring = thread_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
  if (head - tail >= kRingCapacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    EGEMM_COUNTER_ADD("callrec.dropped", 1);
    return;
  }
  ring.slots[head & (kRingCapacity - 1)] = rec;
  ring.head.store(head + 1, std::memory_order_release);
}

std::vector<CallRecord> drain_call_records() {
  std::vector<CallRecord> out;
  if constexpr (!kEnabled) return out;
  RingState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& ring : s.rings) {
    const std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    for (std::uint64_t i = tail; i != head; ++i) {
      out.push_back(ring->slots[i & (kRingCapacity - 1)]);
    }
    ring->tail.store(head, std::memory_order_release);
  }
  return out;
}

std::uint64_t dropped_call_records() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

void clear_call_records() {
  drain_call_records();
  g_dropped.store(0, std::memory_order_relaxed);
}

CallSummary summarize_calls(std::span<const CallRecord> records) {
  CallSummary summary;
  summary.records = records.size();
  summary.dropped = dropped_call_records();
  const auto key_of = [](const CallClassSummary& c) {
    return std::make_tuple(c.m, c.n, c.k, c.batch, c.scheme, c.backend,
                           c.engine, c.isa);
  };
  for (const CallRecord& rec : records) {
    CallClassSummary* cls = nullptr;
    const auto key = std::make_tuple(rec.m, rec.n, rec.k, rec.batch,
                                     rec.scheme, rec.backend, rec.engine,
                                     rec.isa);
    for (CallClassSummary& existing : summary.classes) {
      if (key_of(existing) == key) {
        cls = &existing;
        break;
      }
    }
    if (cls == nullptr) {
      CallClassSummary fresh;
      fresh.m = rec.m;
      fresh.n = rec.n;
      fresh.k = rec.k;
      fresh.batch = rec.batch;
      fresh.scheme = rec.scheme;
      fresh.backend = rec.backend;
      fresh.engine = rec.engine;
      fresh.isa = rec.isa;
      summary.classes.push_back(fresh);
      cls = &summary.classes.back();
    }
    ++cls->calls;
    cls->gemms += rec.batch;
    if (rec.batch_id != 0) ++cls->batched_records;
    if (rec.lookup == PlanLookup::kHit) ++cls->plan_hits;
    if (rec.lookup == PlanLookup::kMiss) ++cls->plan_misses;
    cls->total_ns += rec.total_ns;
    cls->split_ns += rec.split_ns;
    cls->pack_ns += rec.pack_ns;
    cls->mma_ns += rec.mma_ns;
    cls->combine_ns += rec.combine_ns;
    cls->flops += rec.flops;
    cls->bytes_moved += rec.bytes_moved;
    cls->latency.record(rec.total_ns);
  }
  std::sort(summary.classes.begin(), summary.classes.end(),
            [&key_of](const CallClassSummary& a, const CallClassSummary& b) {
              return key_of(a) < key_of(b);
            });
  return summary;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_name_field(std::string& out, const char* key, const char* name) {
  if (name == nullptr) return;
  out += ", \"";
  out += key;
  out += "\": \"";
  append_json_escaped(out, name);
  out += '"';
}

}  // namespace

std::string call_summary_json_block(const CallSummary& summary,
                                    const std::string& indent,
                                    const CallJsonNames& names) {
  std::string out = "{\n";
  out += indent;
  out += "  \"records\": ";
  append_u64(out, summary.records);
  out += ",\n";
  out += indent;
  out += "  \"dropped\": ";
  append_u64(out, summary.dropped);
  out += ",\n";
  out += indent;
  out += "  \"classes\": [";
  for (std::size_t i = 0; i < summary.classes.size(); ++i) {
    const CallClassSummary& cls = summary.classes[i];
    out += i == 0 ? "\n" : ",\n";
    out += indent;
    out += "    {\"m\": ";
    append_u64(out, cls.m);
    out += ", \"n\": ";
    append_u64(out, cls.n);
    out += ", \"k\": ";
    append_u64(out, cls.k);
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  ", \"scheme\": %d, \"backend\": %u, \"engine\": %u, "
                  "\"isa\": %u",
                  static_cast<int>(cls.scheme),
                  static_cast<unsigned>(cls.backend),
                  static_cast<unsigned>(cls.engine),
                  static_cast<unsigned>(cls.isa));
    out += buf;
    if (names.scheme != nullptr) {
      append_name_field(out, "scheme_name", names.scheme(cls.scheme));
    }
    if (names.backend != nullptr) {
      append_name_field(out, "backend_name", names.backend(cls.backend));
    }
    if (names.engine != nullptr) {
      append_name_field(out, "engine_name", names.engine(cls.engine));
    }
    if (names.isa != nullptr) {
      append_name_field(out, "isa_name", names.isa(cls.isa));
    }
    out += ",\n";
    out += indent;
    out += "     \"calls\": ";
    append_u64(out, cls.calls);
    out += ", \"batch\": ";
    append_u64(out, cls.batch);
    out += ", \"gemms\": ";
    append_u64(out, cls.gemms);
    out += ", \"batched_records\": ";
    append_u64(out, cls.batched_records);
    out += ", \"plan_hits\": ";
    append_u64(out, cls.plan_hits);
    out += ", \"plan_misses\": ";
    append_u64(out, cls.plan_misses);
    out += ", \"flops\": ";
    append_u64(out, cls.flops);
    out += ", \"bytes_moved\": ";
    append_u64(out, cls.bytes_moved);
    out += ",\n";
    out += indent;
    out += "     \"total_ns\": ";
    append_u64(out, cls.total_ns);
    out += ", \"split_ns\": ";
    append_u64(out, cls.split_ns);
    out += ", \"pack_ns\": ";
    append_u64(out, cls.pack_ns);
    out += ", \"mma_ns\": ";
    append_u64(out, cls.mma_ns);
    out += ", \"combine_ns\": ";
    append_u64(out, cls.combine_ns);
    out += ",\n";
    out += indent;
    out += "     \"gflops\": ";
    append_double(out, cls.gflops());
    out += ", \"stage_coverage\": ";
    append_double(out, cls.stage_coverage());
    out += ", \"p50_ns\": ";
    append_u64(out, cls.latency.quantile(0.50));
    out += ", \"p90_ns\": ";
    append_u64(out, cls.latency.quantile(0.90));
    out += ", \"p99_ns\": ";
    append_u64(out, cls.latency.quantile(0.99));
    out += ", \"p999_ns\": ";
    append_u64(out, cls.latency.quantile(0.999));
    out += "}";
  }
  out += summary.classes.empty() ? "]\n" : "\n" + indent + "  ]\n";
  out += indent;
  out += "}";
  return out;
}

}  // namespace egemm::obs
