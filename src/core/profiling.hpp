#pragma once
// The generalized emulation-design workflow, part (a): precision profiling
// (§3.1, Fig. 2a, Fig. 3, Artifact §A.3 "Profiling").
//
// Given a specialized-core compute primitive whose operation precision is
// undocumented, the workflow
//   1. generates randomized high-precision inputs,
//   2. evaluates a set of *probing compute primitives* on the CPU, each
//      hypothesising one intermediate precision,
//   3. bitwise-compares the specialized-core result against every probe
//      over many trials, and
//   4. certifies the highest hypothesis whose results match on at least
//      the required number of leading mantissa bits for every trial.
//
// The certified precision then licenses an emulation design: on Tensor
// Cores the binary32 hypothesis is certified to >= 21 mantissa bits, which
// is exactly what Algorithm 1's 4-instruction design relies on. The
// workflow also *rejects* hypotheses: run against a deliberately broken
// core (binary16 accumulation) it refuses to certify binary32 -- the
// failure-injection tests exercise that path.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fp/half.hpp"

namespace egemm::core {

/// A specialized-core dot-product primitive: d = a . b + c with binary16
/// inputs and a binary32 accumulator (one output element of D = AxB + C).
using CorePrimitive = std::function<float(
    std::span<const fp::Half>, std::span<const fp::Half>, float)>;

struct ProbeOutcome {
  std::string name;  ///< e.g. "d_HALF", "d_FLOAT"

  /// Worst-case count of leading mantissa bits on which the core and probe
  /// results agree bitwise. This is the raw comparison the artifact prints;
  /// it collapses on trials where the dot product cancels to near zero
  /// (the tiny result amplifies a few-ulp difference), so it is reported
  /// but not used for certification.
  int min_matching_mantissa_bits = 24;

  /// Worst-case agreement measured against the computation's scale
  /// (|c| + sum |a_i b_i|): -log2(|core - probe| / scale), capped at 24.
  /// This is the precision an accumulator actually delivers and is what
  /// certification uses.
  double min_scale_relative_bits = 24.0;

  bool bitwise_identical_always = true;  ///< full 32-bit match every trial
  std::uint64_t trials = 0;
};

struct ProfilingReport {
  std::vector<ProbeOutcome> probes;
  /// Name of the best certified probe, or empty when nothing reaches the
  /// requested precision.
  std::string certified_probe;
  int certified_mantissa_bits = 0;
  int required_mantissa_bits = 21;
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;

  bool certified() const noexcept { return !certified_probe.empty(); }

  /// True when the certified operation precision is the binary32
  /// hypothesis -- the condition that licenses the 4-instruction design
  /// (Alg. 1). A core certified only at "d_HALF" was profiled successfully
  /// but would need the Dekker-style fallback (§3.2).
  bool licenses_extended_precision() const noexcept {
    return certified_probe == "d_FLOAT";
  }
};

struct ProfilingConfig {
  std::uint64_t trials = 10000;  ///< the paper uses 10,000 random groups
  std::uint64_t seed = 2021;
  int dot_length = 16;           ///< k extent of the compute primitive
  int required_mantissa_bits = 21;  ///< extended-precision requirement
};

/// Runs the profiling workflow on `core` (Fig. 2a). The probe set is the
/// paper's: binary16 accumulation ("d_HALF") and sequential binary32
/// ("d_FLOAT").
ProfilingReport profile_core(const CorePrimitive& core,
                             const ProfilingConfig& config);

/// Convenience: profiles the simulated Tensor Core primitive.
ProfilingReport profile_tensor_core(const ProfilingConfig& config = {});

/// One trial's raw values, mirroring the artifact printout
/// ("half_result / single_result / Tensor Core" with hex bit patterns).
struct ProfilingSample {
  float half_result;
  float single_result;
  float tc_result;
};
ProfilingSample sample_trial(std::uint64_t seed, int dot_length = 16);

}  // namespace egemm::core
