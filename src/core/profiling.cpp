#include "core/profiling.hpp"

#include <algorithm>
#include <cmath>

#include "fp/float_bits.hpp"
#include "tcsim/tensor_core.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace egemm::core {

namespace {

/// Fills `values` with random binary16 data in [-1, 1] (the paper
/// initializes the probing inputs directly in half precision).
void random_half_span(std::span<fp::Half> values, util::Xoshiro256& rng) {
  for (auto& value : values) {
    value = fp::Half(rng.uniform(-1.0f, 1.0f));
  }
}

}  // namespace

ProfilingReport profile_core(const CorePrimitive& core,
                             const ProfilingConfig& config) {
  EGEMM_EXPECTS(config.trials > 0);
  EGEMM_EXPECTS(config.dot_length > 0);

  ProfilingReport report;
  report.trials = config.trials;
  report.seed = config.seed;
  report.required_mantissa_bits = config.required_mantissa_bits;
  report.probes = {
      ProbeOutcome{"d_HALF", 24, 24.0, true, 0},
      ProbeOutcome{"d_FLOAT", 24, 24.0, true, 0},
  };

  util::Xoshiro256 rng(config.seed);
  std::vector<fp::Half> a(static_cast<std::size_t>(config.dot_length));
  std::vector<fp::Half> b(static_cast<std::size_t>(config.dot_length));

  for (std::uint64_t trial = 0; trial < config.trials; ++trial) {
    random_half_span(a, rng);
    random_half_span(b, rng);
    const float c = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();

    const float core_result = core(a, b, c);
    const float probes[2] = {
        tcsim::probe_dot_half(a, b, c),
        tcsim::probe_dot_float(a, b, c),
    };
    // Magnitude the accumulator actually handled; the yardstick for
    // scale-relative agreement.
    double scale = std::fabs(static_cast<double>(c));
    for (std::size_t i = 0; i < a.size(); ++i) {
      scale += std::fabs(a[i].to_double() * b[i].to_double());
    }
    scale = std::max(scale, 1e-30);

    for (std::size_t p = 0; p < 2; ++p) {
      ProbeOutcome& outcome = report.probes[p];
      const int bits = fp::matching_mantissa_bits(core_result, probes[p]);
      outcome.min_matching_mantissa_bits =
          std::min(outcome.min_matching_mantissa_bits, bits);
      const double diff = std::fabs(static_cast<double>(core_result) -
                                    static_cast<double>(probes[p]));
      const double rel_bits =
          diff == 0.0 ? 24.0 : std::min(24.0, -std::log2(diff / scale));
      outcome.min_scale_relative_bits =
          std::min(outcome.min_scale_relative_bits, rel_bits);
      if (fp::f32_bits(core_result) != fp::f32_bits(probes[p])) {
        outcome.bitwise_identical_always = false;
      }
      ++outcome.trials;
    }
  }

  // Certify the highest-precision hypothesis that met the scale-relative
  // requirement over every trial. Probes are ordered lowest precision
  // first, so the last qualifying entry wins.
  for (const ProbeOutcome& outcome : report.probes) {
    if (outcome.min_scale_relative_bits >=
        static_cast<double>(config.required_mantissa_bits)) {
      report.certified_probe = outcome.name;
      report.certified_mantissa_bits =
          static_cast<int>(outcome.min_scale_relative_bits);
    }
  }
  return report;
}

ProfilingReport profile_tensor_core(const ProfilingConfig& config) {
  return profile_core(
      [](std::span<const fp::Half> a, std::span<const fp::Half> b, float c) {
        return tcsim::tc_dot(a, b, c);
      },
      config);
}

ProfilingSample sample_trial(std::uint64_t seed, int dot_length) {
  EGEMM_EXPECTS(dot_length > 0);
  util::Xoshiro256 rng(seed);
  std::vector<fp::Half> a(static_cast<std::size_t>(dot_length));
  std::vector<fp::Half> b(static_cast<std::size_t>(dot_length));
  random_half_span(a, rng);
  random_half_span(b, rng);
  const float c = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
  return ProfilingSample{
      tcsim::probe_dot_half(a, b, c),
      tcsim::probe_dot_float(a, b, c),
      tcsim::tc_dot(a, b, c),
  };
}

}  // namespace egemm::core
