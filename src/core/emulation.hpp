#pragma once
// Tile-level emulation algorithms (§3.2, Algorithm 1, and the §2.2
// baselines).
//
// All functions compute D = A x B + C on one Tensor-Core-shaped tile where
// A, B, C, D are binary32 and the multiplication runs on the simulated
// Tensor Core (half inputs, binary32 accumulation). They differ in the
// data split and the number of specialized-core instructions:
//
//   EGEMM-TC (Alg. 1): round-split, 4 mma_sync calls, accumulated
//       low-order-first: D = (((C + Alo.Blo) + Alo.Bhi) + Ahi.Blo) + Ahi.Bhi
//   Markidis [20]: truncate-split, 3 mma_sync calls (the original drops the
//       Alo.Blo term): D = ((C + Alo.Bhi) + Ahi.Blo) + Ahi.Bhi
//   Dekker [7]: both split halves multiplied entirely in binary16 with
//       error-compensated (two-sum) accumulation -- 16 half-precision
//       instructions per emulated product term. Kept as the classical
//       high-overhead baseline the paper argues against.

#include "core/split.hpp"
#include "tcsim/fragment.hpp"

namespace egemm::core {

using FragmentF32 = tcsim::Fragment<float, tcsim::kTcM, tcsim::kTcK>;
using FragmentF32B = tcsim::Fragment<float, tcsim::kTcK, tcsim::kTcN>;

/// Algorithm 1: the 4-instruction EGEMM-TC emulation on one tile.
/// `method` defaults to round-split; passing truncate-split gives the
/// 4-call ablation variant used by bench_ablation_split.
void egemm_mma_tile(tcsim::FragmentAcc& d, const FragmentF32& a,
                    const FragmentF32B& b, const tcsim::FragmentAcc& c,
                    SplitMethod method = SplitMethod::kRoundSplit) noexcept;

/// Markidis' 3-instruction truncate-split emulation on one tile.
void markidis_mma_tile(tcsim::FragmentAcc& d, const FragmentF32& a,
                       const FragmentF32B& b,
                       const tcsim::FragmentAcc& c) noexcept;

/// Plain half-precision Tensor Core tile (cuBLAS-TC-Half equivalent): both
/// inputs rounded to binary16, one mma_sync.
void half_mma_tile(tcsim::FragmentAcc& d, const FragmentF32& a,
                   const FragmentF32B& b,
                   const tcsim::FragmentAcc& c) noexcept;

/// Dekker-style emulation: extended precision out of half-only arithmetic
/// (input precision == output precision == binary16), with compensated
/// accumulation. Returns the per-output-element half-instruction count via
/// `instruction_count` (16 per product term, matching §1's 16x overhead).
void dekker_mma_tile(tcsim::FragmentAcc& d, const FragmentF32& a,
                     const FragmentF32B& b, const tcsim::FragmentAcc& c,
                     long* instruction_count = nullptr) noexcept;

/// Specialized-core instruction count per emulated tile MMA.
constexpr int kEgemmInstructions = 4;
constexpr int kMarkidisInstructions = 3;
constexpr int kDekkerInstructions = 16;

/// Scalar Dekker compensated product in binary16 arithmetic:
/// returns (p, e) with p + e == a*b up to binary16 representability.
/// Exposed for tests of the classical EFT in half precision.
struct HalfProduct {
  fp::Half p;
  fp::Half e;
};
HalfProduct dekker_two_prod_half(fp::Half a, fp::Half b) noexcept;

}  // namespace egemm::core
