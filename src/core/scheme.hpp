#pragma once
// The emulation-scheme ladder (DESIGN.md §16).
//
// A scheme describes one way of emulating a binary32 GEMM on binary16
// multiply hardware: how each input decomposes into binary16 planes
// (split method + plane count), which plane-pair products the kernel
// executes (the term coverage grid), and the sound a-priori error bound
// that follows. The ladder orders the known schemes from cheapest to
// most precise *representation*:
//
//   half            raw RN16 inputs, 1 term        (cuBLAS-TC-Half)
//   markidis        2-plane truncate, 3 terms      (Markidis [20])
//   truncate-2term  2-plane truncate, 4 terms      (Alg. 1, Fig. 4a)
//   round-2term     2-plane round, 4 terms         (EGEMM-TC, Fig. 4b)
//   slice-3term     3-plane truncate slices, 9 terms  (Ozaki-style words)
//   recovery-3term  3-plane round, 9 terms         (Ootomo-Yokota FP32
//                                                   recovery)
//
// split_bits (effective significand bits captured by the decomposition)
// increases strictly along the ladder; the *total* error bound does not
// always follow it, because binary32 accumulation grows with
// term_count * k -- at large k a 9-term rung can carry a looser sound
// bound than a 4-term one. The accuracy-contract resolver therefore
// evaluates every rung's full bound instead of trusting the order.
//
// This header is the single source of truth for scheme identity: the plan
// cache key, the obs counters, the differential harness paths, and the
// verify-side hand bounds all classify against it.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "core/split.hpp"

namespace egemm::core {

/// Rungs of the emulation-precision ladder, cheapest first.
enum class SchemeId : int {
  kHalf = 0,   ///< raw RN16 inputs, single product
  kMarkidis,   ///< 2-plane truncate split, Alo x Blo dropped
  kTruncate2,  ///< 2-plane truncate split, all 4 terms
  kRound2,     ///< 2-plane round split, all 4 terms (the paper's scheme)
  kSlice3,     ///< 3-plane truncate slices, all 9 terms
  kRecovery3,  ///< 3-plane round split, all 9 terms
  kCount
};

inline constexpr std::size_t kSchemeCount =
    static_cast<std::size_t>(SchemeId::kCount);

/// One executed plane-pair product, by split depth (0 = hi plane; depth d
/// is the residual after d split levels).
struct SchemeTerm {
  int a_depth = 0;
  int b_depth = 0;
};

inline constexpr int kMaxSchemeTerms = 9;

/// Static description of one ladder rung.
struct SchemeDescriptor {
  SchemeId id = SchemeId::kRound2;
  const char* name = "";     ///< stable identifier (replay descriptors, CLI)
  const char* summary = "";  ///< one-line human description
  SplitMethod split = SplitMethod::kRoundSplit;
  bool half_only = false;  ///< raw RN16 inputs, no residual planes
  int planes = 2;          ///< planes in the bound model (1 for half)
  int plan_planes = 2;     ///< planes the executable recipe decomposes into
  int term_count = 4;
  /// Executed terms in kernel execution order (low-order products first
  /// for the multi-plane rungs, so small contributions accumulate before
  /// large ones). Only the first term_count entries are meaningful.
  std::array<SchemeTerm, kMaxSchemeTerms> terms{};
  int split_bits = 21;      ///< significand bits the decomposition captures
  int operation_bits = 21;  ///< min(split_bits, 24): binary32 accumulator cap
};

/// The descriptor for a rung. `id` must be a real rung, not kCount.
const SchemeDescriptor& scheme(SchemeId id) noexcept;

const char* scheme_name(SchemeId id) noexcept;

/// Inverse of scheme_name; nullopt for unknown names.
std::optional<SchemeId> parse_scheme_name(std::string_view name) noexcept;

/// All rungs in ladder order.
std::span<const SchemeId> scheme_ladder() noexcept;

/// Numeric profile of an emulation path: split method, plane count, and
/// the term coverage grid. This is what the error model consumes and what
/// plan recipes / statically derived kernel profiles are classified
/// against. Term (a_depth, b_depth) lives at bit a_depth * planes +
/// b_depth of term_mask.
struct SchemeProfile {
  SplitMethod split = SplitMethod::kRoundSplit;
  int planes = 2;
  /// Raw RN16 inputs with no residual planes at all (half rung): the
  /// representation error is a single binary16 rounding and the
  /// dropped-term machinery does not apply.
  bool half_only = false;
  std::uint32_t term_mask = 0xF;

  bool term(int a_depth, int b_depth) const noexcept {
    return (term_mask >> (a_depth * planes + b_depth) & 1u) != 0;
  }
  void set_term(int a_depth, int b_depth, bool computed) noexcept {
    const std::uint32_t bit = 1u << (a_depth * planes + b_depth);
    term_mask = computed ? (term_mask | bit) : (term_mask & ~bit);
  }
  /// Executed products per output element per k-step.
  int term_count() const noexcept;
};

/// The profile a rung's descriptor induces.
SchemeProfile scheme_profile(SchemeId id) noexcept;

/// Maps a profile back onto the ladder: the rung whose split method, plane
/// count, half-only flag, and term grid all match, or nullopt when the
/// profile matches no named rung (custom recipes, mis-derived kernels).
std::optional<SchemeId> classify_scheme(const SchemeProfile& profile) noexcept;

// -- a-priori error bounds (DESIGN.md §11/§16) -------------------------------

/// Scale context of one output element D[i][j].
struct BoundInputs {
  std::size_t k = 0;
  double a_scale = 0.0;  ///< max |A[i][t]| over the element's row
  double b_scale = 0.0;  ///< max |B[t][j]| over the element's column
  double c_abs = 0.0;    ///< |C[i][j]|, 0 when C is absent
};

struct ErrorBound {
  double split_term = 0.0;    ///< plane representation error
  double dropped_term = 0.0;  ///< products the scheme does not compute
  double accum_term = 0.0;    ///< binary32 accumulation (Higham gamma_n)
  double worst_abs = 0.0;     ///< sound total
  double expected_abs = 0.0;  ///< statistical estimate; NOT sound
};

/// Per-element sound a-priori bound for a profile. Requires every |A|, |B|
/// input magnitude to be below the binary16 overflow threshold (the split
/// itself saturates beyond it). Bit-identical to the pre-ladder
/// verify::element_bound for every two-plane profile.
ErrorBound scheme_element_bound(const SchemeProfile& profile,
                                const BoundInputs& in) noexcept;

/// scheme_element_bound on the rung's own profile.
ErrorBound scheme_bound(SchemeId id, const BoundInputs& in) noexcept;

// -- accuracy contracts ------------------------------------------------------

/// A caller-stated element-wise accuracy requirement: the planner must
/// pick a scheme whose sound a-priori bound is at most max_abs_error for
/// the given scale context. Scales that are zero or negative mean "derive
/// from the data" at the API layers that can see the matrices.
struct AccuracyContract {
  double max_abs_error = 0.0;
  double a_scale = 0.0;
  double b_scale = 0.0;
  double c_abs = 0.0;
};

/// One rung's verdict against a contract.
struct SchemeRungBound {
  SchemeId scheme = SchemeId::kHalf;
  double worst_abs = 0.0;
  bool feasible = false;
};

struct ContractResolution {
  bool feasible = false;
  /// The selected rung: cheapest (fewest terms) among the feasible ones,
  /// ties broken by the tighter bound, then by ladder order.
  SchemeId scheme = SchemeId::kRound2;
  ErrorBound bound;  ///< the selected rung's bound (zero when infeasible)
  /// The tightest rung overall -- what an infeasibility error should name.
  SchemeId tightest = SchemeId::kRound2;
  double tightest_worst_abs = 0.0;
  double target = 0.0;
  std::array<SchemeRungBound, kSchemeCount> rungs{};
};

/// Evaluates every rung's full bound against the contract and selects the
/// cheapest provably sufficient one. A non-positive max_abs_error is
/// always infeasible. k == 0 (D = C exactly) is feasible on every rung.
ContractResolution resolve_contract(const AccuracyContract& contract,
                                    std::size_t k) noexcept;

}  // namespace egemm::core
