#include "core/scheme.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace egemm::core {

namespace {

constexpr double kU32 = 0x1.0p-24;  // binary32 unit roundoff

/// Terms of the two-plane all-terms recipe (Alg. 1), execution order:
/// low-order products first so small contributions accumulate before the
/// dominant hi x hi one.
constexpr std::array<SchemeTerm, kMaxSchemeTerms> kTerms2{{
    {1, 1}, {1, 0}, {0, 1}, {0, 0},
}};
/// Markidis drops the lo x lo product.
constexpr std::array<SchemeTerm, kMaxSchemeTerms> kTermsMarkidis{{
    {1, 0}, {0, 1}, {0, 0},
}};
constexpr std::array<SchemeTerm, kMaxSchemeTerms> kTermsHalf{{
    {0, 0},
}};
/// Three-plane recipes accumulate by descending total depth (the plan
/// layer's k3Split order).
constexpr std::array<SchemeTerm, kMaxSchemeTerms> kTerms3{{
    {2, 2}, {2, 1}, {1, 2}, {2, 0}, {1, 1}, {0, 2}, {1, 0}, {0, 1}, {0, 0},
}};

constexpr std::array<SchemeDescriptor, kSchemeCount> kDescriptors{{
    {SchemeId::kHalf, "half", "raw RN16 inputs, single tensor-core product",
     SplitMethod::kRoundSplit, /*half_only=*/true, /*planes=*/1,
     /*plan_planes=*/2, /*term_count=*/1, kTermsHalf, /*split_bits=*/10,
     /*operation_bits=*/10},
    {SchemeId::kMarkidis, "markidis",
     "2-plane truncate split, Alo x Blo dropped", SplitMethod::kTruncateSplit,
     /*half_only=*/false, /*planes=*/2, /*plan_planes=*/2, /*term_count=*/3,
     kTermsMarkidis, /*split_bits=*/19, /*operation_bits=*/19},
    {SchemeId::kTruncate2, "truncate-2term",
     "2-plane truncate split, all 4 terms", SplitMethod::kTruncateSplit,
     /*half_only=*/false, /*planes=*/2, /*plan_planes=*/2, /*term_count=*/4,
     kTerms2, /*split_bits=*/20, /*operation_bits=*/20},
    {SchemeId::kRound2, "round-2term",
     "2-plane round split, all 4 terms (EGEMM-TC)", SplitMethod::kRoundSplit,
     /*half_only=*/false, /*planes=*/2, /*plan_planes=*/2, /*term_count=*/4,
     kTerms2, /*split_bits=*/21, /*operation_bits=*/21},
    {SchemeId::kSlice3, "slice-3term",
     "3-plane truncate slices, all 9 terms (Ozaki-style)",
     SplitMethod::kTruncateSplit, /*half_only=*/false, /*planes=*/3,
     /*plan_planes=*/3, /*term_count=*/9, kTerms3, /*split_bits=*/30,
     /*operation_bits=*/24},
    {SchemeId::kRecovery3, "recovery-3term",
     "3-plane round split, all 9 terms (FP32 recovery)",
     SplitMethod::kRoundSplit, /*half_only=*/false, /*planes=*/3,
     /*plan_planes=*/3, /*term_count=*/9, kTerms3, /*split_bits=*/32,
     /*operation_bits=*/24},
}};

constexpr std::array<SchemeId, kSchemeCount> kLadder{
    SchemeId::kHalf,      SchemeId::kMarkidis, SchemeId::kTruncate2,
    SchemeId::kRound2,    SchemeId::kSlice3,   SchemeId::kRecovery3,
};

constexpr std::uint32_t grid_mask(int planes) noexcept {
  return (1u << (planes * planes)) - 1u;
}

/// Worst-case magnitude of a hi plane for |x| <= scale: round-to-nearest
/// can push the plane half a binary16 ulp above x (padded to 2^-10
/// relative), plus the subnormal half-quantum.
double hi_plane_bound(double scale) noexcept {
  return scale * (1.0 + 0x1.0p-10) + 0x1.0p-25;
}

/// Magnitude bound of the plane at split depth `depth` (0 = hi).
double plane_bound(SplitMethod split, int depth, double scale) noexcept {
  if (depth == 0) return hi_plane_bound(scale);
  return split_plane_bound(split, depth, scale);
}

/// Per-input representation error of the profile's decomposition of x.
double residual_bound(const SchemeProfile& profile, double scale) noexcept {
  if (profile.half_only) {
    // Single RN16 rounding: half a binary16 ulp (2^-11 relative), with the
    // subnormal half-quantum floor.
    return std::max(scale * 0x1.0p-11, 0x1.0p-25);
  }
  return split_residual_bound_planes(profile.split, profile.planes, scale);
}

}  // namespace

const SchemeDescriptor& scheme(SchemeId id) noexcept {
  return kDescriptors[static_cast<std::size_t>(id)];
}

const char* scheme_name(SchemeId id) noexcept { return scheme(id).name; }

std::optional<SchemeId> parse_scheme_name(std::string_view name) noexcept {
  for (const SchemeDescriptor& descriptor : kDescriptors) {
    if (name == descriptor.name) return descriptor.id;
  }
  return std::nullopt;
}

std::span<const SchemeId> scheme_ladder() noexcept { return kLadder; }

int SchemeProfile::term_count() const noexcept {
  if (half_only) return 1;
  return std::popcount(term_mask & grid_mask(planes));
}

SchemeProfile scheme_profile(SchemeId id) noexcept {
  const SchemeDescriptor& descriptor = scheme(id);
  SchemeProfile profile;
  profile.split = descriptor.split;
  profile.half_only = descriptor.half_only;
  profile.planes = descriptor.planes;
  profile.term_mask = 0;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(descriptor.term_count); ++i) {
    profile.set_term(descriptor.terms[i].a_depth, descriptor.terms[i].b_depth,
                     true);
  }
  return profile;
}

std::optional<SchemeId> classify_scheme(
    const SchemeProfile& profile) noexcept {
  const std::uint32_t mask = profile.term_mask & grid_mask(profile.planes);
  for (SchemeId id : kLadder) {
    const SchemeProfile rung = scheme_profile(id);
    // The split method participates even for the half rung: a truncating
    // raw-binary16 kernel does not satisfy kHalf's RN16 bound and must be
    // flagged as a mismatch, not silently accepted.
    if (rung.split == profile.split && rung.planes == profile.planes &&
        rung.half_only == profile.half_only && rung.term_mask == mask) {
      return id;
    }
  }
  return std::nullopt;
}

ErrorBound scheme_element_bound(const SchemeProfile& profile,
                                const BoundInputs& in) noexcept {
  ErrorBound bound;
  const double k = static_cast<double>(in.k);
  if (in.k == 0) {
    // D = C exactly: every scheme copies C through untouched.
    return bound;
  }

  const double eps_a = residual_bound(profile, in.a_scale);
  const double eps_b = residual_bound(profile, in.b_scale);
  const int planes = profile.half_only ? 1 : profile.planes;
  std::array<double, 3> mag_a{};
  std::array<double, 3> mag_b{};
  for (int d = 0; d < planes; ++d) {
    const auto di = static_cast<std::size_t>(d);
    mag_a[di] = plane_bound(profile.split, d, in.a_scale);
    mag_b[di] = plane_bound(profile.split, d, in.b_scale);
  }

  // Representation: each term's computed planes multiply out to
  // (a - ra)(b - rb), so the per-term slip against the exact product is
  // ra*b + rb*a - ra*rb.
  bound.split_term = k * (eps_a * in.b_scale + eps_b * in.a_scale +
                          eps_a * eps_b);

  // Accumulation magnitude over the computed plane-pair grid, and the
  // products the scheme never computes (Markidis drops Alo x Blo). The
  // a-major iteration keeps the two-plane sums bit-identical to the
  // pre-ladder hand model.
  double dropped = 0.0;
  double product_mag = 0.0;
  if (profile.half_only) {
    product_mag = mag_a[0] * mag_b[0];
  } else {
    for (int a = 0; a < planes; ++a) {
      for (int b = 0; b < planes; ++b) {
        const double mag = mag_a[static_cast<std::size_t>(a)] *
                           mag_b[static_cast<std::size_t>(b)];
        if (profile.term(a, b)) {
          product_mag += mag;
        } else {
          dropped += mag;
        }
      }
    }
  }
  bound.dropped_term = k * dropped;

  // Accumulation: term_count * k exact products summed in binary32 in some
  // association (pair sums chained onto C). Higham's gamma_n over the
  // magnitude sum is association-independent, so one bound covers the
  // fused, separate-pass, and pair-sum orders alike.
  const double n_adds = static_cast<double>(profile.term_count()) * k;
  const double nu = n_adds * kU32;
  if (nu >= 0.5) {
    // gamma_n degenerates; no shape in the harness gets near this (it
    // needs term_count * k > 2^23), but stay sound if one ever does.
    bound.accum_term = std::numeric_limits<double>::infinity();
  } else {
    const double magnitude_sum = in.c_abs + k * product_mag;
    bound.accum_term =
        (nu / (1.0 - nu)) * magnitude_sum + n_adds * 0x1.0p-149;
  }

  // Sound total, with a 2^-20 relative pad absorbing the oracle's 2^-53
  // collapse and the binary64 arithmetic of the measurement itself.
  bound.worst_abs = (bound.split_term + bound.dropped_term +
                     bound.accum_term) *
                        (1.0 + 0x1.0p-20) +
                    0x1.0p-300;

  // Statistical estimate (NOT sound): typical input magnitude scale/2,
  // round-split residuals random-walk at sqrt(k), truncate-split residuals
  // are one-signed and accumulate linearly at ~1/4 of the worst case --
  // the executable form of the paper's Fig. 4 round-vs-truncate gap.
  const double tau =
      0.5 * (eps_a * in.b_scale + eps_b * in.a_scale);  // typical per-term
  const bool one_signed =
      !profile.half_only && profile.split == SplitMethod::kTruncateSplit;
  const double split_exp =
      one_signed ? k * tau * 0.25 : std::sqrt(k) * tau;
  const double dropped_exp = one_signed ? k * dropped * 0.0625
                                        : std::sqrt(k) * dropped * 0.25;
  const double accum_exp =
      kU32 * std::sqrt(n_adds) * (in.c_abs + k * product_mag) * 0.5;
  bound.expected_abs = split_exp + dropped_exp + accum_exp;
  return bound;
}

ErrorBound scheme_bound(SchemeId id, const BoundInputs& in) noexcept {
  return scheme_element_bound(scheme_profile(id), in);
}

ContractResolution resolve_contract(const AccuracyContract& contract,
                                    std::size_t k) noexcept {
  ContractResolution resolution;
  BoundInputs in;
  in.k = k;
  in.a_scale = std::max(contract.a_scale, 0.0);
  in.b_scale = std::max(contract.b_scale, 0.0);
  in.c_abs = std::max(contract.c_abs, 0.0);
  resolution.target = contract.max_abs_error;

  bool have_selected = false;
  int selected_terms = 0;
  double tightest = std::numeric_limits<double>::infinity();
  for (SchemeId id : kLadder) {
    const std::size_t index = static_cast<std::size_t>(id);
    const ErrorBound bound = scheme_bound(id, in);
    SchemeRungBound& rung = resolution.rungs[index];
    rung.scheme = id;
    rung.worst_abs = bound.worst_abs;
    rung.feasible = resolution.target > 0.0 &&
                    bound.worst_abs <= resolution.target;
    if (bound.worst_abs < tightest) {
      tightest = bound.worst_abs;
      resolution.tightest = id;
    }
    if (!rung.feasible) continue;
    const int terms = scheme(id).term_count;
    // Cheapest feasible rung: fewest executed terms, ties broken by the
    // tighter bound; strict < keeps ladder order as the final tiebreak.
    if (!have_selected || terms < selected_terms ||
        (terms == selected_terms &&
         bound.worst_abs < resolution.bound.worst_abs)) {
      have_selected = true;
      selected_terms = terms;
      resolution.feasible = true;
      resolution.scheme = id;
      resolution.bound = bound;
    }
  }
  resolution.tightest_worst_abs = tightest;
  return resolution;
}

}  // namespace egemm::core
