#include "core/emulation.hpp"

#include "tcsim/tensor_core.hpp"
#include "util/assert.hpp"

namespace egemm::core {

namespace {

using tcsim::FragmentA;
using tcsim::FragmentAcc;
using tcsim::FragmentB;
using tcsim::kTcK;
using tcsim::kTcM;
using tcsim::kTcN;

/// Splits a binary32 A-shaped tile into binary16 lo/hi tiles.
void split_tile_a(const FragmentF32& a, FragmentA& lo, FragmentA& hi,
                  SplitMethod method) noexcept {
  for (int i = 0; i < kTcM; ++i) {
    for (int k = 0; k < kTcK; ++k) {
      const SplitHalves halves = split_scalar(a.at(i, k), method);
      hi.at(i, k) = halves.hi;
      lo.at(i, k) = halves.lo;
    }
  }
}

void split_tile_b(const FragmentF32B& b, FragmentB& lo, FragmentB& hi,
                  SplitMethod method) noexcept {
  for (int k = 0; k < kTcK; ++k) {
    for (int j = 0; j < kTcN; ++j) {
      const SplitHalves halves = split_scalar(b.at(k, j), method);
      hi.at(k, j) = halves.hi;
      lo.at(k, j) = halves.lo;
    }
  }
}

/// Compensated binary16 two-sum: s + t absorbs x, keeping the running
/// error term. All operations round to binary16 (Dekker's premise).
void dh_add(fp::Half& s, fp::Half& t, fp::Half x) noexcept {
  const fp::Half sum = s + x;
  const fp::Half bv = sum - s;
  const fp::Half err = (s - (sum - bv)) + (x - bv);
  t = t + err;
  const fp::Half renorm = sum + t;
  t = t - (renorm - sum);
  s = renorm;
}

}  // namespace

void egemm_mma_tile(FragmentAcc& d, const FragmentF32& a, const FragmentF32B& b,
                    const FragmentAcc& c, SplitMethod method) noexcept {
  FragmentA alo, ahi;
  FragmentB blo, bhi;
  split_tile_a(a, alo, ahi, method);
  split_tile_b(b, blo, bhi, method);

  // Algorithm 1, low-order terms first so small contributions are absorbed
  // before the large Ahi x Bhi partial product dominates the accumulator.
  FragmentAcc acc = c;
  tcsim::mma_sync(acc, alo, blo, acc);
  tcsim::mma_sync(acc, alo, bhi, acc);
  tcsim::mma_sync(acc, ahi, blo, acc);
  tcsim::mma_sync(acc, ahi, bhi, acc);
  d = acc;
}

void markidis_mma_tile(FragmentAcc& d, const FragmentF32& a,
                       const FragmentF32B& b, const FragmentAcc& c) noexcept {
  FragmentA alo, ahi;
  FragmentB blo, bhi;
  split_tile_a(a, alo, ahi, SplitMethod::kTruncateSplit);
  split_tile_b(b, blo, bhi, SplitMethod::kTruncateSplit);

  // Markidis [20] drops the Alo x Blo term (its magnitude is below the
  // 2^-20 target anyway) and pays a further bit to the truncate-split.
  FragmentAcc acc = c;
  tcsim::mma_sync(acc, alo, bhi, acc);
  tcsim::mma_sync(acc, ahi, blo, acc);
  tcsim::mma_sync(acc, ahi, bhi, acc);
  d = acc;
}

void half_mma_tile(FragmentAcc& d, const FragmentF32& a, const FragmentF32B& b,
                   const FragmentAcc& c) noexcept {
  FragmentA ah;
  FragmentB bh;
  for (int i = 0; i < kTcM; ++i) {
    for (int k = 0; k < kTcK; ++k) ah.at(i, k) = fp::Half(a.at(i, k));
  }
  for (int k = 0; k < kTcK; ++k) {
    for (int j = 0; j < kTcN; ++j) bh.at(k, j) = fp::Half(b.at(k, j));
  }
  tcsim::mma_sync(d, ah, bh, c);
}

HalfProduct dekker_two_prod_half(fp::Half a, fp::Half b) noexcept {
  // Veltkamp split inside binary16: splitter 2^6 + 1 for the 11-bit
  // significand. (With odd precision the classical error formula can be
  // off by one ulp of the error term; acceptable for this baseline.)
  const fp::Half splitter = fp::Half(65.0f);
  const fp::Half ca = splitter * a;
  const fp::Half ahi = ca - (ca - a);
  const fp::Half alo = a - ahi;
  const fp::Half cb = splitter * b;
  const fp::Half bhi = cb - (cb - b);
  const fp::Half blo = b - bhi;

  const fp::Half p = a * b;
  const fp::Half e =
      ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo;
  return {p, e};
}

void dekker_mma_tile(FragmentAcc& d, const FragmentF32& a,
                     const FragmentF32B& b, const FragmentAcc& c,
                     long* instruction_count) noexcept {
  // Dekker's algorithm assumes the hardware computes half -> half, so the
  // whole tile is evaluated scalar-by-scalar in binary16 arithmetic with a
  // compensated (s, t) accumulator pair per output element. Each emulated
  // extended-precision multiply-accumulate costs 16 binary16 instructions
  // (§1), versus Alg. 1's 4 tile-wide Tensor Core instructions.
  long ops = 0;
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      const SplitHalves ch = split_scalar(c.at(i, j), SplitMethod::kRoundSplit);
      fp::Half s = ch.hi;
      fp::Half t = ch.lo;
      for (int k = 0; k < kTcK; ++k) {
        const SplitHalves av = split_scalar(a.at(i, k), SplitMethod::kRoundSplit);
        const SplitHalves bv = split_scalar(b.at(k, j), SplitMethod::kRoundSplit);
        // Cross products of the split halves, each compensated.
        const HalfProduct hh = dekker_two_prod_half(av.hi, bv.hi);
        dh_add(s, t, hh.p);
        dh_add(s, t, hh.e);
        dh_add(s, t, av.hi * bv.lo);
        dh_add(s, t, av.lo * bv.hi);
        dh_add(s, t, av.lo * bv.lo);
        ops += kDekkerInstructions;
      }
      d.at(i, j) = static_cast<float>(s.to_double() + t.to_double());
    }
  }
  if (instruction_count != nullptr) *instruction_count += ops;
}

}  // namespace egemm::core
