#include "core/split.hpp"

#include <algorithm>
#ifndef NDEBUG
#include <atomic>
#endif

#include "fp/half_batch.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace egemm::core {

namespace {

#ifndef NDEBUG
std::atomic<std::uint64_t> g_split_elements{0};
#endif

constexpr std::size_t kChunk = 512;  // staging rows live in L1

/// One bookkeeping stop per split call: the debug split-once counter plus
/// the observability registry (elements, L1-chunk count, and the bytes the
/// pass moves -- binary32 in, `planes` planes of `plane_elem_bytes` out).
inline void count_split(std::size_t elements, std::size_t planes,
                        std::size_t plane_elem_bytes) noexcept {
  // All three are unused in NDEBUG builds with observability compiled out.
  static_cast<void>(elements);
  static_cast<void>(planes);
  static_cast<void>(plane_elem_bytes);
#ifndef NDEBUG
  g_split_elements.fetch_add(elements, std::memory_order_relaxed);
#endif
  EGEMM_COUNTER_ADD("split.elements", elements);
  EGEMM_COUNTER_ADD("split.chunks", (elements + kChunk - 1) / kChunk);
  EGEMM_COUNTER_ADD("split.bytes",
                    elements * (sizeof(float) + planes * plane_elem_bytes));
  EGEMM_COUNTER_ADD("split.calls", 1);
}

inline fp::Rounding split_rounding(SplitMethod method) noexcept {
  return method == SplitMethod::kRoundSplit ? fp::Rounding::kNearestEven
                                            : fp::Rounding::kTowardZero;
}

}  // namespace

std::uint64_t debug_split_elements() noexcept {
#ifndef NDEBUG
  return g_split_elements.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

const char* split_method_name(SplitMethod method) noexcept {
  switch (method) {
    case SplitMethod::kRoundSplit:
      return "round-split";
    case SplitMethod::kTruncateSplit:
      return "truncate-split";
  }
  return "?";
}

SplitHalves split_scalar(float x, SplitMethod method) noexcept {
  const fp::Rounding mode = method == SplitMethod::kRoundSplit
                                ? fp::Rounding::kNearestEven
                                : fp::Rounding::kTowardZero;
  const fp::Half hi(x, mode);
  // Exact in binary32: hi is within one binary16 ulp of x, so Sterbenz-type
  // cancellation applies (both operands share the leading bits).
  const float residual = x - hi.to_float();
  const fp::Half lo(residual, mode);
  return {hi, lo};
}

double combine_scalar(SplitHalves halves) noexcept {
  return halves.hi.to_double() + halves.lo.to_double();
}

void split_span(std::span<const float> input, std::span<fp::Half> hi,
                std::span<fp::Half> lo, SplitMethod method) {
  EGEMM_EXPECTS(input.size() == hi.size() && input.size() == lo.size());
  count_split(input.size(), 2, sizeof(fp::Half));
  const fp::Rounding mode = split_rounding(method);
  std::uint16_t bits[kChunk];
  float hi_f[kChunk];
  float residual[kChunk];
  for (std::size_t base = 0; base < input.size(); base += kChunk) {
    const std::size_t len = std::min(kChunk, input.size() - base);
    const std::span<const float> in = input.subspan(base, len);
    fp::f32_to_f16_bits_span(in, {bits, len}, mode);
    fp::f16_bits_to_f32_span({bits, len}, {hi_f, len});
    for (std::size_t i = 0; i < len; ++i) {
      hi[base + i] = fp::Half::from_bits(bits[i]);
      residual[i] = in[i] - hi_f[i];  // exact in binary32
    }
    fp::f32_to_f16_bits_span({residual, len}, {bits, len}, mode);
    for (std::size_t i = 0; i < len; ++i) {
      lo[base + i] = fp::Half::from_bits(bits[i]);
    }
  }
}

void split_span_f32(std::span<const float> input, std::span<float> hi,
                    std::span<float> lo, SplitMethod method) {
  EGEMM_EXPECTS(input.size() == hi.size() && input.size() == lo.size());
  count_split(input.size(), 2, sizeof(float));
  const fp::Rounding mode = split_rounding(method);
  float residual[kChunk];
  for (std::size_t base = 0; base < input.size(); base += kChunk) {
    const std::size_t len = std::min(kChunk, input.size() - base);
    const std::span<const float> in = input.subspan(base, len);
    const std::span<float> hi_out = hi.subspan(base, len);
    fp::f32_round_through_f16_span(in, hi_out, mode);
    for (std::size_t i = 0; i < len; ++i) {
      residual[i] = in[i] - hi_out[i];  // exact in binary32
    }
    fp::f32_round_through_f16_span({residual, len}, lo.subspan(base, len),
                                   mode);
  }
}

SplitThirds split3_scalar(float x, SplitMethod method) noexcept {
  const fp::Rounding mode = split_rounding(method);
  const fp::Half hi(x, mode);
  const float r1 = x - hi.to_float();  // exact in binary32
  const fp::Half mid(r1, mode);
  const float r2 = r1 - mid.to_float();  // exact in binary32
  const fp::Half lo(r2, mode);
  return {hi, mid, lo};
}

double combine3_scalar(SplitThirds thirds) noexcept {
  return thirds.hi.to_double() + thirds.mid.to_double() +
         thirds.lo.to_double();
}

void split3_span_f32(std::span<const float> input, std::span<float> hi,
                     std::span<float> mid, std::span<float> lo,
                     SplitMethod method) {
  EGEMM_EXPECTS(input.size() == hi.size() && input.size() == mid.size() &&
                input.size() == lo.size());
  count_split(input.size(), 3, sizeof(float));
  const fp::Rounding mode = split_rounding(method);
  float r1[kChunk];
  float r2[kChunk];
  for (std::size_t base = 0; base < input.size(); base += kChunk) {
    const std::size_t len = std::min(kChunk, input.size() - base);
    const std::span<const float> in = input.subspan(base, len);
    const std::span<float> hi_out = hi.subspan(base, len);
    const std::span<float> mid_out = mid.subspan(base, len);
    fp::f32_round_through_f16_span(in, hi_out, mode);
    for (std::size_t i = 0; i < len; ++i) r1[i] = in[i] - hi_out[i];
    fp::f32_round_through_f16_span({r1, len}, mid_out, mode);
    for (std::size_t i = 0; i < len; ++i) r2[i] = r1[i] - mid_out[i];
    fp::f32_round_through_f16_span({r2, len}, lo.subspan(base, len), mode);
  }
}

double split_error_bound(SplitMethod method, double scale) noexcept {
  // x_hi captures 11 significand bits of x; the residual magnitude is below
  // 2^-11 |x| (round) or 2^-10 |x| (truncate), and rounding the residual to
  // 11 bits loses at most an additional factor of 2^-11 (round) / 2^-10
  // with truncation keeping the same sign.
  switch (method) {
    case SplitMethod::kRoundSplit:
      return scale * 0x1.0p-22;
    case SplitMethod::kTruncateSplit:
      return scale * 0x1.0p-21;
  }
  return 0.0;
}

double split_residual_bound(SplitMethod method, double scale) noexcept {
  // Below the binary16 normal range rounding quantizes on the fixed
  // subnormal grid (quantum 2^-24), so the scale-relative bound no longer
  // applies; the loss per rounding is at most half a quantum (round) or a
  // full quantum (truncate), and the lo rounding cannot make it worse than
  // one hi-stage quantum.
  switch (method) {
    case SplitMethod::kRoundSplit:
      return std::max(scale * 0x1.0p-22, 0x1.0p-25);
    case SplitMethod::kTruncateSplit:
      return std::max(scale * 0x1.0p-21, 0x1.0p-24);
  }
  return 0.0;
}

double split_residual_bound_planes(SplitMethod method, int planes,
                                   double scale) noexcept {
  if (planes <= 2) return split_residual_bound(method, scale);
  // Binade argument for the three-level stack, |x| in [2^e, 2^(e+1)):
  //  * round: |r1| <= half ulp16(x) <= 2^(e-11), so |r2| <= half
  //    ulp16(r1) <= 2^(e-22) and the final residual |r3| <= half
  //    ulp16(r2) <= 2^(e-33) <= 2^-33 |x|. Below the binary16 normal
  //    range the last rounding loses at most half a subnormal quantum.
  //  * truncate: r1 < ulp16(x) <= 2^(e-10), r2 < ulp16(r1) <= 2^(e-21),
  //    r3 < ulp16(r2) <= 2^(e-32) <= 2^-32 |x|; stated as 2^-31 for a 2x
  //    margin over the statically derived constant (the EG5xx pass
  //    derives exactly 2^-32), with the full-quantum subnormal floor.
  switch (method) {
    case SplitMethod::kRoundSplit:
      return std::max(scale * 0x1.0p-33, 0x1.0p-25);
    case SplitMethod::kTruncateSplit:
      return std::max(scale * 0x1.0p-31, 0x1.0p-24);
  }
  return 0.0;
}

double split_plane_bound(SplitMethod method, int depth, double scale) noexcept {
  if (depth <= 1) return split_lo_plane_bound(method, scale);
  // Each residual level is one per-level factor down: 2^-11 (1 + 2^-11)
  // padded to 0x1.01p-11 for round-split (the RN16 overshoot compounds),
  // a full binary16 ulp 2^-10 for truncate-split. The depth-d plane is
  // the rounding of the depth-d residual, so its magnitude is at most
  // scale * factor^d -- with the subnormal-quantum floor once the
  // residual leaves the binary16 normal range.
  const double level = method == SplitMethod::kRoundSplit ? 0x1.01p-11
                                                          : 0x1.0p-10;
  double rel = level;
  for (int d = 1; d < depth; ++d) rel *= level;
  return std::max(scale * rel, 0x1.0p-24);
}

double split_lo_plane_bound(SplitMethod method, double scale) noexcept {
  // Round-split: |x - hi| <= 2^-11 |x| (half a binary16 ulp), and rounding
  // that residual to binary16 can push lo half an ulp of the residual
  // higher -- the 1 + 2^-11 factor, padded to 0x1.01p-11. Truncate-split:
  // the residual reaches a full binary16 ulp, 2^-10 |x|, and truncating can
  // only shrink it. Both floors are the binary16 subnormal quantum.
  switch (method) {
    case SplitMethod::kRoundSplit:
      return std::max(scale * 0x1.01p-11, 0x1.0p-24);
    case SplitMethod::kTruncateSplit:
      return std::max(scale * 0x1.0p-10, 0x1.0p-24);
  }
  return 0.0;
}

}  // namespace egemm::core
