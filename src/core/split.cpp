#include "core/split.hpp"

#include "util/assert.hpp"

namespace egemm::core {

const char* split_method_name(SplitMethod method) noexcept {
  switch (method) {
    case SplitMethod::kRoundSplit:
      return "round-split";
    case SplitMethod::kTruncateSplit:
      return "truncate-split";
  }
  return "?";
}

SplitHalves split_scalar(float x, SplitMethod method) noexcept {
  const fp::Rounding mode = method == SplitMethod::kRoundSplit
                                ? fp::Rounding::kNearestEven
                                : fp::Rounding::kTowardZero;
  const fp::Half hi(x, mode);
  // Exact in binary32: hi is within one binary16 ulp of x, so Sterbenz-type
  // cancellation applies (both operands share the leading bits).
  const float residual = x - hi.to_float();
  const fp::Half lo(residual, mode);
  return {hi, lo};
}

double combine_scalar(SplitHalves halves) noexcept {
  return halves.hi.to_double() + halves.lo.to_double();
}

void split_span(std::span<const float> input, std::span<fp::Half> hi,
                std::span<fp::Half> lo, SplitMethod method) {
  EGEMM_EXPECTS(input.size() == hi.size() && input.size() == lo.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const SplitHalves halves = split_scalar(input[i], method);
    hi[i] = halves.hi;
    lo[i] = halves.lo;
  }
}

void split_span_f32(std::span<const float> input, std::span<float> hi,
                    std::span<float> lo, SplitMethod method) {
  EGEMM_EXPECTS(input.size() == hi.size() && input.size() == lo.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const SplitHalves halves = split_scalar(input[i], method);
    hi[i] = halves.hi.to_float();
    lo[i] = halves.lo.to_float();
  }
}

SplitThirds split3_scalar(float x) noexcept {
  const fp::Half hi(x);
  const float r1 = x - hi.to_float();  // exact in binary32
  const fp::Half mid(r1);
  const float r2 = r1 - mid.to_float();  // exact in binary32
  const fp::Half lo(r2);
  return {hi, mid, lo};
}

double combine3_scalar(SplitThirds thirds) noexcept {
  return thirds.hi.to_double() + thirds.mid.to_double() +
         thirds.lo.to_double();
}

void split3_span_f32(std::span<const float> input, std::span<float> hi,
                     std::span<float> mid, std::span<float> lo) {
  EGEMM_EXPECTS(input.size() == hi.size() && input.size() == mid.size() &&
                input.size() == lo.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const SplitThirds thirds = split3_scalar(input[i]);
    hi[i] = thirds.hi.to_float();
    mid[i] = thirds.mid.to_float();
    lo[i] = thirds.lo.to_float();
  }
}

double split_error_bound(SplitMethod method, double scale) noexcept {
  // x_hi captures 11 significand bits of x; the residual magnitude is below
  // 2^-11 |x| (round) or 2^-10 |x| (truncate), and rounding the residual to
  // 11 bits loses at most an additional factor of 2^-11 (round) / 2^-10
  // with truncation keeping the same sign.
  switch (method) {
    case SplitMethod::kRoundSplit:
      return scale * 0x1.0p-22;
    case SplitMethod::kTruncateSplit:
      return scale * 0x1.0p-21;
  }
  return 0.0;
}

}  // namespace egemm::core
