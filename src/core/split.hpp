#pragma once
// Data-split algorithms (§3.2, Fig. 4).
//
// Both algorithms decompose a binary32 value x into two binary16 values
// (x_hi, x_lo) with x ~= x_hi + x_lo:
//
//  * truncate-split (Markidis [20], Fig. 4a): x_hi = RZ16(x),
//    x_lo = RZ16(x - x_hi). For positive x the residual is always >= 0, so
//    the sign bit of x_lo never carries information: 20 effective mantissa
//    bits.
//  * round-split (EGEMM-TC, Fig. 4b): x_hi = RN16(x), x_lo = RN16(x - x_hi).
//    Rounding x_hi to nearest makes the residual signed; the sign bit of
//    x_lo encodes the 21st bit, halving the representation error.
//
// In both cases the residual x - x_hi is computed exactly in binary32
// (the subtraction of nearby values is exact), so the only loss is the
// final rounding of the residual to binary16.
//
// Domain: |x| must be below 65520 (the binary16 overflow threshold);
// values at or above it split to an infinite x_hi, mirroring real Tensor
// Core input conversion.

#include <cstddef>
#include <cstdint>
#include <span>

#include "fp/half.hpp"

namespace egemm::core {

enum class SplitMethod {
  kRoundSplit,     ///< EGEMM-TC (Fig. 4b)
  kTruncateSplit,  ///< Markidis (Fig. 4a)
};

const char* split_method_name(SplitMethod method) noexcept;

struct SplitHalves {
  fp::Half hi;
  fp::Half lo;
};

/// Splits one binary32 value.
SplitHalves split_scalar(float x, SplitMethod method) noexcept;

/// Recombines a split pair; exact in binary64.
double combine_scalar(SplitHalves halves) noexcept;

/// Splits a matrix/vector into binary16 hi/lo planes. This is the O(N^2)
/// pass EGEMM-TC runs on CUDA cores before the O(N^3) Tensor Core work.
/// Batched over whole rows via the fp::half_batch kernels; bit-identical
/// to calling split_scalar per element.
void split_span(std::span<const float> input, std::span<fp::Half> hi,
                std::span<fp::Half> lo, SplitMethod method);

/// Same split, but the planes are stored as binary32 values that are
/// exactly binary16-representable -- the fast functional-GEMM path
/// (tcsim::mma_tile_f32 consumes these directly).
void split_span_f32(std::span<const float> input, std::span<float> hi,
                    std::span<float> lo, SplitMethod method);

/// Debug accounting for the split passes: total elements split so far in
/// this process (monotone counter; always 0 in NDEBUG builds). The GEMM
/// drivers assert with it that plane splitting + widening happens exactly
/// once per input matrix per call -- never per tile.
std::uint64_t debug_split_elements() noexcept;

/// Worst-case representation error bound |x - (hi + lo)| for |x| <= scale:
/// 2^-22 * scale for round-split, 2^-21 * scale for truncate-split.
double split_error_bound(SplitMethod method, double scale) noexcept;

/// split_error_bound with the binary16 subnormal floor: when the residual
/// lands below the binary16 normal range (|x| < 2^-14, or any |x| whose
/// residual does), the loss is bounded by the subnormal quantum 2^-24
/// rather than by a fraction of |x|. The a-priori error model
/// (verify/error_model) uses this form so its bounds stay sound on
/// denormal-heavy fuzz inputs.
double split_residual_bound(SplitMethod method, double scale) noexcept;

/// Worst-case magnitude of the lo plane for |x| <= scale (again with the
/// subnormal floor): bounds the split-product terms an emulation scheme
/// drops (Markidis' Alo x Blo) and the lo-plane contribution to the
/// accumulated magnitude in the a-priori error model.
double split_lo_plane_bound(SplitMethod method, double scale) noexcept;

// -- three-way split (extension) ---------------------------------------------
// Splitting into three binary16 planes captures 33 candidate significand
// bits -- more than binary32's 24 -- so the decomposition of a normal
// binary32 value in the binary16 exponent range is *exact*:
//   x == hi + mid + lo  (in exact arithmetic).
// Emulation on top of it (9 Tensor Core products) is limited only by the
// binary32 accumulation, the natural "more precision" extension of Alg. 1
// that §3.1's generalized workflow anticipates.

struct SplitThirds {
  fp::Half hi;
  fp::Half mid;
  fp::Half lo;
};

/// Splits one binary32 value into three binary16 values, rounding every
/// level with `method`. With round-split the decomposition is exact for
/// |x| in [2^-2, 65504) and for any value whose residuals stay in the
/// binary16 range; tiny residuals may round. Truncate-split keeps each
/// plane one-signed (the Ozaki-style word slices) at the cost of one
/// effective bit per level.
SplitThirds split3_scalar(float x,
                          SplitMethod method = SplitMethod::kRoundSplit) noexcept;

/// Recombines; exact in binary64.
double combine3_scalar(SplitThirds thirds) noexcept;

/// Splits into three binary32-stored, binary16-valued planes.
void split3_span_f32(std::span<const float> input, std::span<float> hi,
                     std::span<float> mid, std::span<float> lo,
                     SplitMethod method = SplitMethod::kRoundSplit);

/// split_residual_bound generalized to a `planes`-deep split stack: the
/// worst-case |x - sum(planes)| for |x| <= scale, with the binary16
/// subnormal floor. planes <= 2 delegates to split_residual_bound; three
/// planes tighten the relative part to 2^-33 (round) / 2^-31 (truncate).
double split_residual_bound_planes(SplitMethod method, int planes,
                                   double scale) noexcept;

/// Worst-case magnitude of the plane at split depth `depth` (1 = first
/// residual plane, 2 = second) for |x| <= scale, with the subnormal floor.
/// depth 1 is exactly split_lo_plane_bound; each extra depth is one more
/// per-level factor down. The hi plane (depth 0) is not covered here --
/// its bound includes the RN16 overshoot and lives with the error model.
double split_plane_bound(SplitMethod method, int depth, double scale) noexcept;

}  // namespace egemm::core
