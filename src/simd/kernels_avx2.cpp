// AVX2 + FMA3 kernel tier. Compiled with -mavx2 -mfma (per-file flags in
// src/CMakeLists.txt); when the toolchain cannot target AVX2 this TU
// degrades to a null table and dispatch falls back to scalar.
//
// Bit-exactness argument (DESIGN.md §15):
//  * MMA: the j (column) loop is the vector lane dimension, so lanes are
//    independent output elements and vectorizing over j commutes with the
//    per-element rounding sequence. Within a lane the sequence is the
//    scalar kernel's: p0 = a0*b0[j] (exact -- both operands are
//    half-valued, 11x11 significand bits fit binary32), then ONE rounding
//    for the pair sum, then one for the accumulate. The pair sum runs as
//    fmadd(a1, b1[j], p0) = round(p0 + a1*b1[j]); because the product
//    a1*b1[j] is exact, this equals round(p0 + p1) -- the FMA is used only
//    where it is provably bit-identical, never to fuse the pair-sum adds
//    themselves.
//  * Converters: lane-for-lane transcriptions of the integer cores in
//    half_convert_core.hpp; every select mirrors a branch.

#include "simd/dispatch.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"
#include "simd/half_convert_core.hpp"
#include "simd/kernels_common.hpp"

namespace egemm::simd {

namespace {

// -- MMA ---------------------------------------------------------------------

/// Accumulates one k-slab for four A rows onto eight ymm accumulators
/// (rows r hold lanes [0,8) in acc_lo[r], [8,16) in acc_hi[r]). Exactly
/// fills the 16 ymm registers: 8 accumulators + 4 B row halves + broadcast
/// and pair-sum temporaries.
inline void slab_rows4(__m256 acc_lo[4], __m256 acc_hi[4], const float* a,
                       std::size_t lda, const float* b, int kt) {
  int kk = 0;
  for (; kk + 1 < kt; kk += 2) {
    const float* brow = b + static_cast<std::size_t>(kk) * kMmaTile;
    const __m256 b0_lo = _mm256_loadu_ps(brow);
    const __m256 b0_hi = _mm256_loadu_ps(brow + 8);
    const __m256 b1_lo = _mm256_loadu_ps(brow + kMmaTile);
    const __m256 b1_hi = _mm256_loadu_ps(brow + kMmaTile + 8);
    // Stream the next B k-pair into L1 while this one computes (harmless
    // past the end of the block: prefetches never fault).
    __builtin_prefetch(brow + 4 * kMmaTile);
    for (int r = 0; r < 4; ++r) {
      const float* arow = a + static_cast<std::size_t>(r) * lda;
      const __m256 a0 = _mm256_broadcast_ss(arow + kk);
      const __m256 a1 = _mm256_broadcast_ss(arow + kk + 1);
      __m256 t_lo = _mm256_mul_ps(a0, b0_lo);
      __m256 t_hi = _mm256_mul_ps(a0, b0_hi);
      t_lo = _mm256_fmadd_ps(a1, b1_lo, t_lo);  // round(p0 + p1), exactly
      t_hi = _mm256_fmadd_ps(a1, b1_hi, t_hi);
      acc_lo[r] = _mm256_add_ps(acc_lo[r], t_lo);
      acc_hi[r] = _mm256_add_ps(acc_hi[r], t_hi);
    }
  }
  if (kk < kt) {  // odd slab tail: the lone product accumulates directly
    const float* brow = b + static_cast<std::size_t>(kk) * kMmaTile;
    const __m256 b0_lo = _mm256_loadu_ps(brow);
    const __m256 b0_hi = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < 4; ++r) {
      const float* arow = a + static_cast<std::size_t>(r) * lda;
      const __m256 a0 = _mm256_broadcast_ss(arow + kk);
      acc_lo[r] = _mm256_add_ps(acc_lo[r], _mm256_mul_ps(a0, b0_lo));
      acc_hi[r] = _mm256_add_ps(acc_hi[r], _mm256_mul_ps(a0, b0_hi));
    }
  }
}

inline void load_acc_rows4(const float* acc, int i0, __m256 acc_lo[4],
                           __m256 acc_hi[4]) {
  for (int r = 0; r < 4; ++r) {
    const float* row = acc + static_cast<std::size_t>(i0 + r) * kMmaTile;
    acc_lo[r] = _mm256_loadu_ps(row);
    acc_hi[r] = _mm256_loadu_ps(row + 8);
  }
}

inline void store_acc_rows4(float* acc, int i0, const __m256 acc_lo[4],
                            const __m256 acc_hi[4]) {
  for (int r = 0; r < 4; ++r) {
    float* row = acc + static_cast<std::size_t>(i0 + r) * kMmaTile;
    _mm256_storeu_ps(row, acc_lo[r]);
    _mm256_storeu_ps(row + 8, acc_hi[r]);
  }
}

void mma_block_packed_avx2(float* acc, const float* a, std::size_t lda,
                           const float* b, int k) {
  EGEMM_COUNTER_ADD("tcsim.isa.mma_block.avx2", 1);
  static_assert(kMmaTile % 4 == 0);
  for (int i0 = 0; i0 < kMmaTile; i0 += 4) {
    __m256 acc_lo[4];
    __m256 acc_hi[4];
    load_acc_rows4(acc, i0, acc_lo, acc_hi);
    slab_rows4(acc_lo, acc_hi, a + static_cast<std::size_t>(i0) * lda, lda, b,
               k);
    store_acc_rows4(acc, i0, acc_lo, acc_hi);
  }
}

void mma_tile_recipe_avx2(float* acc, const float* const* a_blocks,
                          const float* const* b_blocks, int ncombos,
                          std::size_t lda, int k, int k_slab, bool fused) {
  EGEMM_COUNTER_ADD("tcsim.isa.mma_tile.avx2", 1);
  detail::check_recipe_args(ncombos, k, k_slab);
  // Row-group outer loop: each group of four rows keeps its accumulators
  // in registers across the whole combo x k-slab recipe (rows are
  // independent chains, so regrouping them is semantics-free).
  for (int i0 = 0; i0 < kMmaTile; i0 += 4) {
    __m256 acc_lo[4];
    __m256 acc_hi[4];
    load_acc_rows4(acc, i0, acc_lo, acc_hi);
    detail::for_each_recipe_slab(
        ncombos, k, k_slab, fused, [&](int c, int k0, int kt) {
          slab_rows4(acc_lo, acc_hi,
                     a_blocks[c] + static_cast<std::size_t>(i0) * lda + k0,
                     lda,
                     b_blocks[c] + static_cast<std::size_t>(k0) * kMmaTile,
                     kt);
        });
    store_acc_rows4(acc, i0, acc_lo, acc_hi);
  }
}

// -- converters --------------------------------------------------------------

inline __m256i load_f32_bits(const float* p) {
  return _mm256_castps_si256(_mm256_loadu_ps(p));
}

/// Eight-lane transcription of detail::f32_bits_to_f16_bits; returns the
/// half bit patterns zero-extended in 32-bit lanes (packing is the span
/// driver's concern; the round-through kernel feeds them straight back).
inline __m256i f32x8_to_f16_bits_u32(__m256i bits, bool nearest) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i sign =
      _mm256_and_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(0x8000));
  const __m256i abs = _mm256_and_si256(bits, _mm256_set1_epi32(0x7fffffff));
  const __m256i exp32 = _mm256_srli_epi32(abs, 23);
  const __m256i half_biased = _mm256_sub_epi32(exp32, _mm256_set1_epi32(112));
  const __m256i sig =
      _mm256_or_si256(_mm256_and_si256(abs, _mm256_set1_epi32(0x7fffff)),
                      _mm256_set1_epi32(0x800000));
  // shift = clamp(13 + max(0, 1 - half_biased), ..., 26)
  __m256i shift = _mm256_add_epi32(
      _mm256_set1_epi32(13),
      _mm256_max_epi32(_mm256_setzero_si256(),
                       _mm256_sub_epi32(one, half_biased)));
  shift = _mm256_min_epi32(shift, _mm256_set1_epi32(26));
  __m256i rounded = _mm256_srlv_epi32(sig, shift);
  if (nearest) {
    const __m256i rem = _mm256_and_si256(
        sig, _mm256_sub_epi32(_mm256_sllv_epi32(one, shift), one));
    const __m256i midpoint =
        _mm256_sllv_epi32(one, _mm256_sub_epi32(shift, one));
    // increment when rem > midpoint, or rem == midpoint and rounded is odd
    // (shift <= 26 keeps rem/midpoint well below 2^31: signed compare ok)
    const __m256i round_up = _mm256_or_si256(
        _mm256_cmpgt_epi32(rem, midpoint),
        _mm256_and_si256(_mm256_cmpeq_epi32(rem, midpoint),
                         _mm256_cmpeq_epi32(_mm256_and_si256(rounded, one),
                                            one)));
    rounded = _mm256_sub_epi32(rounded, round_up);  // mask is 0 or -1
  }
  // Normal path re-biases the exponent (carry out of the significand bumps
  // it for free, including 65504 -> inf); subnormals keep `rounded` as-is.
  const __m256i rebased = _mm256_add_epi32(
      rounded,
      _mm256_slli_epi32(_mm256_sub_epi32(half_biased, one), 10));
  const __m256i is_normal =
      _mm256_cmpgt_epi32(half_biased, _mm256_setzero_si256());
  __m256i result = _mm256_or_si256(
      sign, _mm256_blendv_epi8(rounded, rebased, is_normal));
  // Overrides in reverse precedence order of the scalar early returns.
  const __m256i too_big =
      _mm256_cmpgt_epi32(half_biased, _mm256_set1_epi32(30));
  const __m256i big_value = _mm256_or_si256(
      sign, _mm256_set1_epi32(nearest ? 0x7c00 : 0x7bff));
  result = _mm256_blendv_epi8(result, big_value, too_big);
  const __m256i is_zero =
      _mm256_cmpeq_epi32(exp32, _mm256_setzero_si256());
  result = _mm256_blendv_epi8(result, sign, is_zero);
  const __m256i is_nan_inf =
      _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7f7fffff));
  const __m256i is_nan =
      _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7f800000));
  const __m256i nan_inf_value = _mm256_or_si256(
      sign, _mm256_blendv_epi8(_mm256_set1_epi32(0x7c00),
                               _mm256_set1_epi32(0x7e00), is_nan));
  return _mm256_blendv_epi8(result, nan_inf_value, is_nan_inf);
}

/// Eight-lane transcription of detail::f16_bits_to_f32_one over half bit
/// patterns already widened to 32-bit lanes.
inline __m256 f16x8_bits_to_f32(__m256i h) {
  const __m256i sign = _mm256_slli_epi32(
      _mm256_and_si256(h, _mm256_set1_epi32(0x8000)), 16);
  const __m256i exp = _mm256_and_si256(_mm256_srli_epi32(h, 10),
                                       _mm256_set1_epi32(0x1f));
  const __m256i man = _mm256_and_si256(h, _mm256_set1_epi32(0x3ff));
  // Subnormal: exact integer->float conversion (man < 2^11) scaled by an
  // exact power of two -- identical to the scalar core.
  const __m256i sub = _mm256_castps_si256(_mm256_mul_ps(
      _mm256_cvtepi32_ps(man), _mm256_set1_ps(0x1p-24f)));
  const __m256i norm = _mm256_or_si256(
      _mm256_slli_epi32(_mm256_add_epi32(exp, _mm256_set1_epi32(112)), 23),
      _mm256_slli_epi32(man, 13));
  const __m256i infnan = _mm256_or_si256(_mm256_set1_epi32(0x7f800000),
                                         _mm256_slli_epi32(man, 13));
  __m256i mag = _mm256_blendv_epi8(
      norm, infnan, _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(31)));
  mag = _mm256_blendv_epi8(mag, sub,
                           _mm256_cmpeq_epi32(exp, _mm256_setzero_si256()));
  return _mm256_castsi256_ps(_mm256_or_si256(sign, mag));
}

/// Packs eight 32-bit lanes holding u16 values into eight contiguous u16.
inline __m128i pack_u16x8(__m256i lanes) {
  const __m256i packed = _mm256_packus_epi32(lanes, lanes);
  return _mm256_castsi256_si128(
      _mm256_permute4x64_epi64(packed, 0xd8));  // fix 128-bit lane split
}

void f32_to_f16_bits_avx2(const float* in, std::uint16_t* out, std::size_t n,
                          bool nearest) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.avx2", 1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i half = f32x8_to_f16_bits_u32(load_f32_bits(in + i), nearest);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), pack_u16x8(half));
  }
  for (; i < n; ++i) {
    out[i] = detail::f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(in[i]),
                                          nearest);
  }
}

void f16_bits_to_f32_avx2(const std::uint16_t* in, float* out,
                          std::size_t n) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.avx2", 1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i h = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)));
    _mm256_storeu_ps(out + i, f16x8_bits_to_f32(h));
  }
  for (; i < n; ++i) out[i] = detail::f16_bits_to_f32_one(in[i]);
}

void f32_round_through_f16_avx2(const float* in, float* out, std::size_t n,
                                bool nearest) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.avx2", 1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i half = f32x8_to_f16_bits_u32(load_f32_bits(in + i), nearest);
    _mm256_storeu_ps(out + i, f16x8_bits_to_f32(half));
  }
  for (; i < n; ++i) {
    out[i] = detail::f16_bits_to_f32_one(detail::f32_bits_to_f16_bits(
        std::bit_cast<std::uint32_t>(in[i]), nearest));
  }
}

constexpr KernelTable kAvx2Table = {
    IsaLevel::kAvx2,        "avx2",
    mma_block_packed_avx2,  mma_tile_recipe_avx2,
    f32_to_f16_bits_avx2,   f16_bits_to_f32_avx2,
    f32_round_through_f16_avx2,
};

}  // namespace

const KernelTable* avx2_kernel_table() noexcept { return &kAvx2Table; }

}  // namespace egemm::simd

#else  // !(__AVX2__ && __FMA__)

namespace egemm::simd {

const KernelTable* avx2_kernel_table() noexcept { return nullptr; }

}  // namespace egemm::simd

#endif
