#pragma once
// Kernel dispatch table for the SIMD microkernel layer (DESIGN.md §15).
//
// Each ISA tier provides one KernelTable with the same five entry points;
// `active_kernels()` returns the table for the resolved IsaLevel
// (isa.hpp). Every variant implements the *identical* operation sequence
// -- the pair-sum accumulation the Tensor Core model documents and the
// integer rounding of the scalar converters -- so switching tables never
// changes a single result bit. That property is the acceptance gate for
// adding a variant; tests/test_simd_dispatch.cpp enforces it for every
// table this binary carries.
//
// The layer sits below fp/ and tcsim/ (it depends only on obs/), so both
// the converter front-end and the MMA kernels can route through it without
// a dependency cycle. It deals in raw pointers + element counts rather
// than spans and fp::Rounding: the typed front doors stay in
// fp/half_batch.hpp and tcsim/tensor_core.hpp.

#include <cstddef>
#include <cstdint>

#include "simd/isa.hpp"

namespace egemm::simd {

/// Extent of the packed MMA microtile on every axis. Mirrors
/// tcsim::kTcM/kTcN (static_asserted at the tcsim adapter) without
/// depending on tcsim headers.
inline constexpr int kMmaTile = 16;

/// One ISA tier's kernel set. All function pointers are always non-null.
struct KernelTable {
  IsaLevel level;
  const char* name;  ///< isa_name(level)

  /// Packed-tile MMA: acc (kMmaTile x kMmaTile row-major, contiguous) +=
  /// Ablk x Bblk. `a` is kMmaTile rows of half-valued floats with leading
  /// dimension `lda`; `b` is `k` contiguous rows of kMmaTile floats. Per
  /// output element the operation sequence is exactly
  /// tcsim::detail::pair_sum_accumulate: one rounded p0 + p1 per k pair,
  /// chained onto the accumulator, with the column index as the vector
  /// lane dimension.
  void (*mma_block_packed)(float* acc, const float* a, std::size_t lda,
                           const float* b, int k);

  /// Whole-tile recipe kernel: runs the per-tile combo x k-slab loop of
  /// the packed engine with the accumulator tile held in registers across
  /// the entire k extent (the seed driver reloaded it from L1 once per
  /// 16-deep slab). `a_blocks` / `b_blocks` hold one packed A/B block base
  /// pointer per combo. Semantics:
  ///
  ///   fused:  for k0 in [0, k) step k_slab: for c in combos: slab(c, k0)
  ///   !fused: for c in combos: for k0 in [0, k) step k_slab: slab(c, k0)
  ///
  /// where slab(c, k0) is mma_block_packed(acc, a_blocks[c] + k0, lda,
  /// b_blocks[c] + k0 * kMmaTile, min(k_slab, k - k0)). `k_slab` must be
  /// even (or >= k): even slab boundaries keep the pair-sum pairing
  /// aligned to even k offsets, which is what makes the slab length a pure
  /// blocking choice in the !fused order. In the fused order the slab
  /// length is part of the recipe (combos interleave per slab) -- the
  /// packed engine always passes its semantic 16 there.
  void (*mma_tile_recipe)(float* acc, const float* const* a_blocks,
                          const float* const* b_blocks, int ncombos,
                          std::size_t lda, int k, int k_slab, bool fused);

  /// out[i] = f32_to_f16_bits(in[i]) with round-to-nearest-even when
  /// `nearest`, round-toward-zero otherwise. Bit-identical to
  /// detail::f32_bits_to_f16_bits (half_convert_core.hpp) for all 2^32
  /// inputs.
  void (*f32_to_f16_bits)(const float* in, std::uint16_t* out, std::size_t n,
                          bool nearest);

  /// out[i] = the exactly-equal binary32 value of half bit pattern in[i].
  void (*f16_bits_to_f32)(const std::uint16_t* in, float* out, std::size_t n);

  /// Fused round-trip: out[i] = f16_bits_to_f32(f32_to_f16_bits(in[i])).
  void (*f32_round_through_f16)(const float* in, float* out, std::size_t n,
                                bool nearest);
};

/// Table for the resolved level (isa.hpp). One relaxed atomic load after
/// the first call.
const KernelTable& active_kernels() noexcept;

/// Table for a specific level, or nullptr when this binary was built
/// without that variant (non-x86 target, or a toolchain lacking the
/// -mavx2/-mavx512f flags). Returned tables for levels above what the
/// *machine* supports exist but must not be executed; see isa_available().
const KernelTable* kernels_for(IsaLevel level) noexcept;

/// Whether `level` is both compiled into this binary and executable on
/// this machine -- the set tests and benchmarks iterate over.
bool isa_available(IsaLevel level) noexcept;

/// Hooks for dispatch.cpp; each kernels_*.cpp TU exports its table (or
/// nullptr when the variant is compiled out).
const KernelTable* scalar_kernel_table() noexcept;
const KernelTable* avx2_kernel_table() noexcept;
const KernelTable* avx512_kernel_table() noexcept;

}  // namespace egemm::simd
