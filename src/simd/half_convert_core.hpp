#pragma once
// Scalar binary32 <-> binary16 conversion cores shared by every converter
// variant (moved here from fp/half_batch.cpp when the dispatch layer grew
// under fp/ -- the SIMD TUs need the same algorithm without a dependency
// on fp/). The 32-bit integer rounding mirrors fp's `f64_to_f16_bits`
// exactly (the binary32 -> binary64 widening is exact, so the rounding
// decisions are the same; verified exhaustively over all 2^32 inputs in
// both modes). The AVX2/AVX-512 span kernels are lane-for-lane
// transcriptions of these two functions; tests/test_simd_dispatch.cpp pins
// each against this core over the full binary16 value space and the
// rounding-boundary neighborhoods.

#include <bit>
#include <cstdint>

namespace egemm::simd::detail {

/// 32-bit mirror of `f64_to_f16_bits` for binary32 inputs. Written with
/// value selects instead of early returns so the surrounding span loops
/// are if-convertible; all shifts stay within [1, 26].
inline std::uint16_t f32_bits_to_f16_bits(std::uint32_t bits,
                                          bool nearest) noexcept {
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t abs = bits & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // NaN quiets, +-inf passes through (any mode)
    return static_cast<std::uint16_t>(sign |
                                      (abs > 0x7f800000u ? 0x7e00u : 0x7c00u));
  }
  const int exp32 = static_cast<int>(abs >> 23);
  if (exp32 == 0) return sign;  // binary32 subnormal: |x| < 2^-126 -> +-0
  const int half_biased = exp32 - 112;  // (exp32 - 127) + kExponentBias
  if (half_biased >= 31) {  // at or above the finite/infinity midpoint
    return static_cast<std::uint16_t>(sign | (nearest ? 0x7c00u : 0x7bffu));
  }
  const std::uint32_t sig = (abs & 0x7fffffu) | 0x800000u;
  int shift = 13;  // 23 significand bits down to 10 (normals)
  if (half_biased < 1) shift += 1 - half_biased;  // subnormal 2^-24 grid
  if (shift > 26) shift = 26;  // deeper shifts all round to zero anyway
  std::uint32_t rounded = sig >> shift;
  if (nearest) {
    const std::uint32_t rem = sig & ((1u << shift) - 1u);
    const std::uint32_t midpoint = 1u << (shift - 1);
    if (rem > midpoint || (rem == midpoint && (rounded & 1u))) ++rounded;
  }
  // A carry out of the significand bumps the exponent for free, including
  // the 65504 -> inf carry; subnormal carry to 0x400 is the minimum normal.
  const std::uint32_t magnitude =
      half_biased >= 1
          ? rounded + (static_cast<std::uint32_t>(half_biased - 1) << 10)
          : rounded;
  return static_cast<std::uint16_t>(sign | magnitude);
}

/// Branch-light mirror of `f16_bits_to_f32`: the subnormal branch uses an
/// exact integer->float conversion (man < 2^11, scale a power of two)
/// instead of the normalization loop, so all three cases are selects.
inline float f16_bits_to_f32_one(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (static_cast<std::uint32_t>(h) >> 10) & 0x1fu;
  const std::uint32_t man = h & 0x3ffu;
  const std::uint32_t sub =
      std::bit_cast<std::uint32_t>(static_cast<float>(man) * 0x1p-24f);
  const std::uint32_t norm = ((exp + 112u) << 23) | (man << 13);
  const std::uint32_t infnan = 0x7f800000u | (man << 13);
  const std::uint32_t mag = exp == 0 ? sub : (exp == 31u ? infnan : norm);
  return std::bit_cast<float>(sign | mag);
}

}  // namespace egemm::simd::detail
