#pragma once
// Internals shared by the per-ISA kernel translation units. The recipe
// iteration lives here once so the scalar, AVX2 and AVX-512 variants
// cannot drift in slab/combo order -- that order is part of the bit-exact
// operation sequence (dispatch.hpp documents the contract).

#include <cstddef>

#include "simd/dispatch.hpp"
#include "util/assert.hpp"

namespace egemm::simd::detail {

/// Validates an mma_tile_recipe call. An even slab keeps pair boundaries
/// on even k offsets (so the !fused order stays bit-identical for every
/// slab choice); a slab covering all of k trivially does too.
inline void check_recipe_args(int ncombos, int k, int k_slab) noexcept {
  EGEMM_EXPECTS(ncombos >= 1);
  EGEMM_EXPECTS(k >= 1 && k_slab >= 1);
  EGEMM_EXPECTS(k_slab % 2 == 0 || k_slab >= k);
}

/// The one recipe loop: fused interleaves combos inside each k-slab
/// (Alg. 1), !fused runs each combo's full k extent before the next.
/// `slab(c, k0, kt)` accumulates combo c's [k0, k0 + kt) slab.
template <typename SlabFn>
inline void for_each_recipe_slab(int ncombos, int k, int k_slab, bool fused,
                                 SlabFn&& slab) {
  if (fused) {
    for (int k0 = 0; k0 < k; k0 += k_slab) {
      const int kt = k - k0 < k_slab ? k - k0 : k_slab;
      for (int c = 0; c < ncombos; ++c) slab(c, k0, kt);
    }
  } else {
    for (int c = 0; c < ncombos; ++c) {
      for (int k0 = 0; k0 < k; k0 += k_slab) {
        const int kt = k - k0 < k_slab ? k - k0 : k_slab;
        slab(c, k0, kt);
      }
    }
  }
}

}  // namespace egemm::simd::detail
