#pragma once
// Runtime ISA selection for the SIMD microkernel layer (DESIGN.md §15).
//
// The packed EGEMM hot loops (tcsim::mma_block_packed and the batched
// f32<->f16 converters) ship in several instruction-set variants; this
// header owns the decision of which one runs. The choice is made exactly
// once per process from the CPUID feature flags (plus the OS's XSAVE
// state, which gates whether ymm/zmm registers are actually usable), can
// be overridden by the EGEMM_FORCE_ISA environment variable or
// programmatically (tests and benchmarks force each variant in turn), and
// is recorded once through the observability layer as the
// `tcsim.isa.level` gauge so every BENCH_*.json metrics block states which
// kernel produced its numbers.

#include <optional>
#include <string_view>

namespace egemm::simd {

/// Instruction-set tiers the kernel layer is built for, in strictly
/// increasing capability order. The numeric values are stable: they are
/// what the `tcsim.isa.level` gauge reports.
enum class IsaLevel : int {
  kScalar = 0,  ///< portable C++ (what the seed's auto-vectorizer got)
  kAvx2 = 1,    ///< AVX2 + FMA3 (256-bit lanes)
  kAvx512 = 2,  ///< AVX-512F (512-bit lanes, one zmm per 16-float tile row)
};

inline constexpr int kIsaLevelCount = 3;

/// Raw capability bits relevant to the kernel tiers. `os_ymm` / `os_zmm`
/// are the XCR0-derived bits: a CPU can expose AVX2 while the OS never
/// enabled the wide register state, in which case executing the kernels
/// would fault.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool os_ymm = false;
  bool os_zmm = false;
};

/// Queries CPUID + XGETBV on x86; everything-false elsewhere.
CpuFeatures query_cpu_features() noexcept;

/// Whether `level` can execute on a machine with `features` (compile-time
/// availability of the variant is a separate question -- see
/// `isa_available` in dispatch.hpp).
bool isa_runtime_supported(IsaLevel level, const CpuFeatures& features) noexcept;

/// Highest tier whose kernels both exist in this binary and can execute on
/// `features`.
IsaLevel best_supported(const CpuFeatures& features) noexcept;

/// Stable lowercase name ("scalar", "avx2", "avx512"); used in counter
/// names, benchmark row names and the EGEMM_FORCE_ISA syntax.
const char* isa_name(IsaLevel level) noexcept;

/// Parses an EGEMM_FORCE_ISA value. Accepts the isa_name() strings plus
/// "auto" (meaning: probe), case-sensitively; anything else is nullopt.
/// "auto" is returned as nullopt too -- both mean "no forced level".
std::optional<IsaLevel> parse_isa_name(std::string_view name) noexcept;

/// The level the dispatch tables currently resolve to. First call probes
/// the CPU and honors EGEMM_FORCE_ISA; later calls are one relaxed atomic
/// load. Never returns a level the machine cannot execute.
IsaLevel active_isa() noexcept;

/// isa_name(active_isa()); the tag call-record consumers stamp on
/// per-call telemetry rows.
const char* active_isa_name() noexcept;

/// Programmatic override (the API face of EGEMM_FORCE_ISA). Requests above
/// what the machine supports are clamped; the level actually selected is
/// returned and recorded in the `tcsim.isa.level` gauge. Not intended for
/// concurrent use with in-flight kernels -- tests and benchmarks call it
/// between runs.
IsaLevel force_isa(IsaLevel level) noexcept;

/// Drops any override (programmatic or environment) and re-probes; returns
/// the level auto-selection lands on. Test hook.
IsaLevel reset_isa() noexcept;

}  // namespace egemm::simd
