// Scalar (portable C++) kernel tier: the reference operation sequence
// every SIMD variant is pinned against, bit for bit. The MMA loop is the
// seed packed kernel moved verbatim from tcsim/tensor_core.cpp (PR 2); the
// converter loops run the shared integer cores one element at a time. The
// compiler's own auto-vectorization of these loops is welcome -- it cannot
// change results because -ffp-contract=off pins the operation sequence.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "simd/half_convert_core.hpp"
#include "simd/kernels_common.hpp"

namespace egemm::simd {

namespace {

void mma_block_packed_scalar(float* acc, const float* a, std::size_t lda,
                             const float* b, int k) {
  // Two A rows per pass share each streamed B row; per output element the
  // operation sequence is exactly pair_sum_accumulate (one rounded p0 + p1
  // per k pair, chained onto the accumulator), with the j loop as the
  // vector lane dimension. -ffp-contract=off (top-level CMakeLists) keeps
  // the compiler from fusing the products differently per path.
  static_assert(kMmaTile % 2 == 0);
  for (int i = 0; i < kMmaTile; i += 2) {
    const float* arow0 = a + static_cast<std::size_t>(i) * lda;
    const float* arow1 = arow0 + lda;
    float* acc0 = acc + static_cast<std::size_t>(i) * kMmaTile;
    float* acc1 = acc0 + kMmaTile;
    int kk = 0;
    for (; kk + 1 < k; kk += 2) {
      const float a00 = arow0[kk];
      const float a01 = arow0[kk + 1];
      const float a10 = arow1[kk];
      const float a11 = arow1[kk + 1];
      const float* b0 = b + static_cast<std::size_t>(kk) * kMmaTile;
      const float* b1 = b0 + kMmaTile;
      for (int j = 0; j < kMmaTile; ++j) {
        acc0[j] += a00 * b0[j] + a01 * b1[j];
        acc1[j] += a10 * b0[j] + a11 * b1[j];
      }
    }
    if (kk < k) {
      const float a00 = arow0[kk];
      const float a10 = arow1[kk];
      const float* b0 = b + static_cast<std::size_t>(kk) * kMmaTile;
      for (int j = 0; j < kMmaTile; ++j) {
        acc0[j] += a00 * b0[j];
        acc1[j] += a10 * b0[j];
      }
    }
  }
}

void mma_block_packed_entry(float* acc, const float* a, std::size_t lda,
                            const float* b, int k) {
  EGEMM_COUNTER_ADD("tcsim.isa.mma_block.scalar", 1);
  mma_block_packed_scalar(acc, a, lda, b, k);
}

void mma_tile_recipe_scalar(float* acc, const float* const* a_blocks,
                            const float* const* b_blocks, int ncombos,
                            std::size_t lda, int k, int k_slab, bool fused) {
  EGEMM_COUNTER_ADD("tcsim.isa.mma_tile.scalar", 1);
  detail::check_recipe_args(ncombos, k, k_slab);
  detail::for_each_recipe_slab(
      ncombos, k, k_slab, fused, [&](int c, int k0, int kt) {
        mma_block_packed_scalar(
            acc, a_blocks[c] + k0, lda,
            b_blocks[c] + static_cast<std::size_t>(k0) * kMmaTile, kt);
      });
}

void f32_to_f16_bits_scalar(const float* in, std::uint16_t* out,
                            std::size_t n, bool nearest) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.scalar", 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = detail::f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(in[i]),
                                          nearest);
  }
}

void f16_bits_to_f32_scalar(const std::uint16_t* in, float* out,
                            std::size_t n) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.scalar", 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = detail::f16_bits_to_f32_one(in[i]);
  }
}

void f32_round_through_f16_scalar(const float* in, float* out, std::size_t n,
                                  bool nearest) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.scalar", 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = detail::f16_bits_to_f32_one(detail::f32_bits_to_f16_bits(
        std::bit_cast<std::uint32_t>(in[i]), nearest));
  }
}

constexpr KernelTable kScalarTable = {
    IsaLevel::kScalar,        "scalar",
    mma_block_packed_entry,   mma_tile_recipe_scalar,
    f32_to_f16_bits_scalar,   f16_bits_to_f32_scalar,
    f32_round_through_f16_scalar,
};

}  // namespace

const KernelTable* scalar_kernel_table() noexcept { return &kScalarTable; }

}  // namespace egemm::simd
