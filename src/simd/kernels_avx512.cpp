// AVX-512F kernel tier. Compiled with -mavx512f (per-file flags in
// src/CMakeLists.txt); degrades to a null table when the toolchain cannot
// target AVX-512. The bit-exactness argument is the AVX2 TU's, with one
// structural bonus: a packed tile row is exactly one zmm register, so the
// whole 16x16 accumulator lives in 16 of the 32 architectural zmm
// registers across the entire recipe -- zero accumulator memory traffic
// between the tile load and the final store.

#include "simd/dispatch.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

// GCC's AVX-512 intrinsic headers model "undefined" destination operands
// with a self-initialized local (`__m512i __Y = __Y`), which trips
// -Wmaybe-uninitialized when the intrinsics inline into our loops. The
// warning is about the header idiom, not this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"
#include "simd/half_convert_core.hpp"
#include "simd/kernels_common.hpp"

namespace egemm::simd {

namespace {

// -- MMA ---------------------------------------------------------------------

/// Accumulates one k-slab for all 16 A rows onto the register-resident
/// accumulator tile (one zmm per row). The row loop must stay fully
/// unrolled so `accv` never spills.
inline void slab_rows16(__m512 accv[kMmaTile], const float* a,
                        std::size_t lda, const float* b, int kt) {
  int kk = 0;
  for (; kk + 1 < kt; kk += 2) {
    const float* brow = b + static_cast<std::size_t>(kk) * kMmaTile;
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + kMmaTile);
    __builtin_prefetch(brow + 8 * kMmaTile);
#pragma GCC unroll 16
    for (int r = 0; r < kMmaTile; ++r) {
      const float* arow = a + static_cast<std::size_t>(r) * lda;
      __m512 t = _mm512_mul_ps(_mm512_set1_ps(arow[kk]), b0);
      t = _mm512_fmadd_ps(_mm512_set1_ps(arow[kk + 1]), b1,
                          t);  // round(p0 + p1), exactly
      accv[r] = _mm512_add_ps(accv[r], t);
    }
  }
  if (kk < kt) {
    const __m512 b0 =
        _mm512_loadu_ps(b + static_cast<std::size_t>(kk) * kMmaTile);
#pragma GCC unroll 16
    for (int r = 0; r < kMmaTile; ++r) {
      const float* arow = a + static_cast<std::size_t>(r) * lda;
      accv[r] = _mm512_add_ps(accv[r], _mm512_mul_ps(_mm512_set1_ps(arow[kk]),
                                                     b0));
    }
  }
}

inline void load_acc(const float* acc, __m512 accv[kMmaTile]) {
#pragma GCC unroll 16
  for (int r = 0; r < kMmaTile; ++r) {
    accv[r] = _mm512_loadu_ps(acc + static_cast<std::size_t>(r) * kMmaTile);
  }
}

inline void store_acc(float* acc, const __m512 accv[kMmaTile]) {
#pragma GCC unroll 16
  for (int r = 0; r < kMmaTile; ++r) {
    _mm512_storeu_ps(acc + static_cast<std::size_t>(r) * kMmaTile, accv[r]);
  }
}

void mma_block_packed_avx512(float* acc, const float* a, std::size_t lda,
                             const float* b, int k) {
  EGEMM_COUNTER_ADD("tcsim.isa.mma_block.avx512", 1);
  __m512 accv[kMmaTile];
  load_acc(acc, accv);
  slab_rows16(accv, a, lda, b, k);
  store_acc(acc, accv);
}

void mma_tile_recipe_avx512(float* acc, const float* const* a_blocks,
                            const float* const* b_blocks, int ncombos,
                            std::size_t lda, int k, int k_slab, bool fused) {
  EGEMM_COUNTER_ADD("tcsim.isa.mma_tile.avx512", 1);
  detail::check_recipe_args(ncombos, k, k_slab);
  __m512 accv[kMmaTile];
  load_acc(acc, accv);
  detail::for_each_recipe_slab(
      ncombos, k, k_slab, fused, [&](int c, int k0, int kt) {
        slab_rows16(accv, a_blocks[c] + k0, lda,
                    b_blocks[c] + static_cast<std::size_t>(k0) * kMmaTile,
                    kt);
      });
  store_acc(acc, accv);
}

// -- converters --------------------------------------------------------------

/// Sixteen-lane transcription of detail::f32_bits_to_f16_bits; returns the
/// half bit patterns zero-extended in 32-bit lanes.
inline __m512i f32x16_to_f16_bits_u32(__m512i bits, bool nearest) {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i sign =
      _mm512_and_si512(_mm512_srli_epi32(bits, 16), _mm512_set1_epi32(0x8000));
  const __m512i abs = _mm512_and_si512(bits, _mm512_set1_epi32(0x7fffffff));
  const __m512i exp32 = _mm512_srli_epi32(abs, 23);
  const __m512i half_biased = _mm512_sub_epi32(exp32, _mm512_set1_epi32(112));
  const __m512i sig =
      _mm512_or_si512(_mm512_and_si512(abs, _mm512_set1_epi32(0x7fffff)),
                      _mm512_set1_epi32(0x800000));
  __m512i shift = _mm512_add_epi32(
      _mm512_set1_epi32(13),
      _mm512_max_epi32(zero, _mm512_sub_epi32(one, half_biased)));
  shift = _mm512_min_epi32(shift, _mm512_set1_epi32(26));
  __m512i rounded = _mm512_srlv_epi32(sig, shift);
  if (nearest) {
    const __m512i rem = _mm512_and_si512(
        sig, _mm512_sub_epi32(_mm512_sllv_epi32(one, shift), one));
    const __m512i midpoint =
        _mm512_sllv_epi32(one, _mm512_sub_epi32(shift, one));
    const __mmask16 round_up =
        _mm512_cmpgt_epi32_mask(rem, midpoint) |
        (_mm512_cmpeq_epi32_mask(rem, midpoint) &
         _mm512_test_epi32_mask(rounded, one));
    rounded = _mm512_mask_add_epi32(rounded, round_up, rounded, one);
  }
  const __m512i rebased = _mm512_add_epi32(
      rounded, _mm512_slli_epi32(_mm512_sub_epi32(half_biased, one), 10));
  const __mmask16 is_normal = _mm512_cmpgt_epi32_mask(half_biased, zero);
  __m512i result = _mm512_or_si512(
      sign, _mm512_mask_mov_epi32(rounded, is_normal, rebased));
  const __mmask16 too_big =
      _mm512_cmpgt_epi32_mask(half_biased, _mm512_set1_epi32(30));
  result = _mm512_mask_mov_epi32(
      result, too_big,
      _mm512_or_si512(sign, _mm512_set1_epi32(nearest ? 0x7c00 : 0x7bff)));
  const __mmask16 is_zero = _mm512_cmpeq_epi32_mask(exp32, zero);
  result = _mm512_mask_mov_epi32(result, is_zero, sign);
  const __mmask16 is_nan_inf =
      _mm512_cmpgt_epi32_mask(abs, _mm512_set1_epi32(0x7f7fffff));
  const __mmask16 is_nan =
      _mm512_cmpgt_epi32_mask(abs, _mm512_set1_epi32(0x7f800000));
  const __m512i nan_inf_value = _mm512_or_si512(
      sign, _mm512_mask_mov_epi32(_mm512_set1_epi32(0x7c00), is_nan,
                                  _mm512_set1_epi32(0x7e00)));
  return _mm512_mask_mov_epi32(result, is_nan_inf, nan_inf_value);
}

/// Sixteen-lane transcription of detail::f16_bits_to_f32_one.
inline __m512 f16x16_bits_to_f32(__m512i h) {
  const __m512i sign =
      _mm512_slli_epi32(_mm512_and_si512(h, _mm512_set1_epi32(0x8000)), 16);
  const __m512i exp =
      _mm512_and_si512(_mm512_srli_epi32(h, 10), _mm512_set1_epi32(0x1f));
  const __m512i man = _mm512_and_si512(h, _mm512_set1_epi32(0x3ff));
  const __m512i sub = _mm512_castps_si512(_mm512_mul_ps(
      _mm512_cvtepi32_ps(man), _mm512_set1_ps(0x1p-24f)));
  const __m512i norm = _mm512_or_si512(
      _mm512_slli_epi32(_mm512_add_epi32(exp, _mm512_set1_epi32(112)), 23),
      _mm512_slli_epi32(man, 13));
  const __m512i infnan = _mm512_or_si512(_mm512_set1_epi32(0x7f800000),
                                         _mm512_slli_epi32(man, 13));
  __m512i mag = _mm512_mask_mov_epi32(
      norm, _mm512_cmpeq_epi32_mask(exp, _mm512_set1_epi32(31)), infnan);
  mag = _mm512_mask_mov_epi32(
      mag, _mm512_cmpeq_epi32_mask(exp, _mm512_setzero_si512()), sub);
  return _mm512_castsi512_ps(_mm512_or_si512(sign, mag));
}

void f32_to_f16_bits_avx512(const float* in, std::uint16_t* out,
                            std::size_t n, bool nearest) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.avx512", 1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i half = f32x16_to_f16_bits_u32(
        _mm512_castps_si512(_mm512_loadu_ps(in + i)), nearest);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi32_epi16(half));  // lanes are <= 0xffff
  }
  for (; i < n; ++i) {
    out[i] = detail::f32_bits_to_f16_bits(std::bit_cast<std::uint32_t>(in[i]),
                                          nearest);
  }
}

void f16_bits_to_f32_avx512(const std::uint16_t* in, float* out,
                            std::size_t n) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.avx512", 1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i h = _mm512_cvtepu16_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i)));
    _mm512_storeu_ps(out + i, f16x16_bits_to_f32(h));
  }
  for (; i < n; ++i) out[i] = detail::f16_bits_to_f32_one(in[i]);
}

void f32_round_through_f16_avx512(const float* in, float* out, std::size_t n,
                                  bool nearest) {
  EGEMM_COUNTER_ADD("tcsim.isa.convert.avx512", 1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i half = f32x16_to_f16_bits_u32(
        _mm512_castps_si512(_mm512_loadu_ps(in + i)), nearest);
    _mm512_storeu_ps(out + i, f16x16_bits_to_f32(half));
  }
  for (; i < n; ++i) {
    out[i] = detail::f16_bits_to_f32_one(detail::f32_bits_to_f16_bits(
        std::bit_cast<std::uint32_t>(in[i]), nearest));
  }
}

constexpr KernelTable kAvx512Table = {
    IsaLevel::kAvx512,        "avx512",
    mma_block_packed_avx512,  mma_tile_recipe_avx512,
    f32_to_f16_bits_avx512,   f16_bits_to_f32_avx512,
    f32_round_through_f16_avx512,
};

}  // namespace

const KernelTable* avx512_kernel_table() noexcept { return &kAvx512Table; }

}  // namespace egemm::simd

#else  // !__AVX512F__

namespace egemm::simd {

const KernelTable* avx512_kernel_table() noexcept { return nullptr; }

}  // namespace egemm::simd

#endif
