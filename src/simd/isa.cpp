#include "simd/isa.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define EGEMM_SIMD_X86 1
#else
#define EGEMM_SIMD_X86 0
#endif

namespace egemm::simd {

namespace {

#if EGEMM_SIMD_X86
/// XGETBV(0): which register states the OS saves/restores. CPUID alone is
/// not enough -- AVX executes only when the OS enabled the xmm+ymm (and,
/// for AVX-512, the opmask+zmm) state components.
std::uint64_t xcr0() noexcept {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}
#endif

/// -1 = unresolved; otherwise a valid IsaLevel value. Resolution is
/// idempotent, so the unsynchronized double-resolve race on first use is
/// benign (both writers store the same value).
std::atomic<int> g_active_level{-1};

void record_level(IsaLevel level) noexcept {
  static_cast<void>(level);  // unused when observability is compiled out
  EGEMM_GAUGE_SET("tcsim.isa.level", static_cast<int>(level));
}

IsaLevel clamp_to_supported(IsaLevel requested) noexcept {
  const IsaLevel best = best_supported(query_cpu_features());
  return static_cast<int>(requested) <= static_cast<int>(best) ? requested
                                                               : best;
}

IsaLevel resolve_auto() noexcept {
  // The environment override is part of auto-resolution so that a process
  // launched with EGEMM_FORCE_ISA behaves as if force_isa() had been the
  // first call. Unknown values (and "auto") fall back to probing.
  const char* env = std::getenv("EGEMM_FORCE_ISA");
  if (env != nullptr) {
    const std::optional<IsaLevel> forced = parse_isa_name(env);
    if (forced.has_value()) return clamp_to_supported(*forced);
  }
  return best_supported(query_cpu_features());
}

}  // namespace

CpuFeatures query_cpu_features() noexcept {
  CpuFeatures features;
#if EGEMM_SIMD_X86
  std::uint32_t eax = 0;
  std::uint32_t ebx = 0;
  std::uint32_t ecx = 0;
  std::uint32_t edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return features;
  features.fma = (ecx & bit_FMA) != 0;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  if (osxsave) {
    const std::uint64_t state = xcr0();
    features.os_ymm = (state & 0x6u) == 0x6u;            // SSE + AVX state
    features.os_zmm = (state & 0xe6u) == 0xe6u;          // + opmask/zmm state
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    features.avx2 = (ebx & bit_AVX2) != 0;
    features.avx512f = (ebx & bit_AVX512F) != 0;
  }
#endif
  return features;
}

bool isa_runtime_supported(IsaLevel level,
                           const CpuFeatures& features) noexcept {
  switch (level) {
    case IsaLevel::kScalar:
      return true;
    case IsaLevel::kAvx2:
      return features.avx2 && features.fma && features.os_ymm;
    case IsaLevel::kAvx512:
      return features.avx512f && features.os_zmm;
  }
  return false;
}

IsaLevel best_supported(const CpuFeatures& features) noexcept {
  for (int level = kIsaLevelCount - 1; level > 0; --level) {
    const auto candidate = static_cast<IsaLevel>(level);
    if (isa_runtime_supported(candidate, features) &&
        kernels_for(candidate) != nullptr) {
      return candidate;
    }
  }
  return IsaLevel::kScalar;
}

const char* isa_name(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<IsaLevel> parse_isa_name(std::string_view name) noexcept {
  if (name == "scalar") return IsaLevel::kScalar;
  if (name == "avx2") return IsaLevel::kAvx2;
  if (name == "avx512") return IsaLevel::kAvx512;
  return std::nullopt;
}

const char* active_isa_name() noexcept { return isa_name(active_isa()); }

IsaLevel active_isa() noexcept {
  const int cached = g_active_level.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<IsaLevel>(cached);
  const IsaLevel resolved = resolve_auto();
  g_active_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
  record_level(resolved);
  return resolved;
}

IsaLevel force_isa(IsaLevel level) noexcept {
  const IsaLevel actual = clamp_to_supported(level);
  g_active_level.store(static_cast<int>(actual), std::memory_order_relaxed);
  record_level(actual);
  return actual;
}

IsaLevel reset_isa() noexcept {
  const IsaLevel resolved = resolve_auto();
  g_active_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
  record_level(resolved);
  return resolved;
}

}  // namespace egemm::simd
