#include "simd/dispatch.hpp"

#include "util/assert.hpp"

namespace egemm::simd {

const KernelTable* kernels_for(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kScalar:
      return scalar_kernel_table();
    case IsaLevel::kAvx2:
      return avx2_kernel_table();
    case IsaLevel::kAvx512:
      return avx512_kernel_table();
  }
  return nullptr;
}

bool isa_available(IsaLevel level) noexcept {
  return kernels_for(level) != nullptr &&
         isa_runtime_supported(level, query_cpu_features());
}

const KernelTable& active_kernels() noexcept {
  const KernelTable* table = kernels_for(active_isa());
  // active_isa() only resolves to levels whose table is compiled in
  // (best_supported consults kernels_for; forced levels are clamped).
  EGEMM_EXPECTS(table != nullptr);
  return *table;
}

}  // namespace egemm::simd
